#include "sparse/imh_stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/thread_pool.hpp"

namespace hottiles {

double
giniCoefficient(std::vector<double> values)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    double total = std::accumulate(values.begin(), values.end(), 0.0);
    if (total <= 0.0)
        return 0.0;
    // G = (2 * sum_i i*x_i) / (n * sum x) - (n + 1) / n, i in 1..n.
    const double n = static_cast<double>(values.size());
    double weighted = 0.0;
    for (size_t i = 0; i < values.size(); ++i)
        weighted += static_cast<double>(i + 1) * values[i];
    return 2.0 * weighted / (n * total) - (n + 1.0) / n;
}

ImhStats
computeImhStats(const TileGrid& grid)
{
    ScopedTimer timer("scan.imh_stats");
    ImhStats s;
    s.occupied_tiles = grid.numTiles();
    s.empty_tiles = grid.emptyTiles();
    s.tile_cv = grid.tileNnzCv();

    // Deterministic parallel sweep over tiles: per-chunk partials are
    // combined in chunk order, so sums match any thread count exactly.
    struct TileSums
    {
        double total = 0;
        double hot = 0;
        double max = 0;
    };
    std::vector<double> tile_nnz(grid.numTiles());
    TileSums sums = parallelReduce(
        0, grid.numTiles(), kGrainTiles, TileSums{},
        [&](size_t b, size_t e) {
            TileSums p;
            for (size_t i = b; i < e; ++i) {
                double z = static_cast<double>(grid.tile(i).nnz);
                tile_nnz[i] = z;
                p.total += z;
                p.max = std::max(p.max, z);
                if (z >= static_cast<double>(grid.tile(i).width))
                    p.hot += z;
            }
            return p;
        },
        [](TileSums a, TileSums b) {
            a.total += b.total;
            a.hot += b.hot;
            a.max = std::max(a.max, b.max);
            return a;
        });
    double total = sums.total;
    double hot = sums.hot;
    s.max_tile_nnz = std::max(s.max_tile_nnz, sums.max);
    if (grid.numTiles() > 0)
        s.mean_tile_nnz = total / static_cast<double>(grid.numTiles());
    if (total > 0)
        s.hot_mass = hot / total;
    s.tile_gini = giniCoefficient(tile_nnz);

    // Top-k% mass.
    std::sort(tile_nnz.begin(), tile_nnz.end(), std::greater<>());
    auto topMass = [&](double frac) {
        if (tile_nnz.empty() || total <= 0)
            return 0.0;
        size_t k = std::max<size_t>(
            1, static_cast<size_t>(frac * double(tile_nnz.size())));
        double m = 0;
        for (size_t i = 0; i < k; ++i)
            m += tile_nnz[i];
        return m / total;
    };
    s.top10pct_mass = topMass(0.10);
    s.top1pct_mass = topMass(0.01);

    // Row-degree Gini from the tiled arrays (rows sorted within tiles).
    // Panels own disjoint row ranges, so counting parallelizes over
    // panels without races; the +1.0 increments are exact in double.
    std::vector<double> degrees(grid.matrixRows(), 0.0);
    parallelFor(0, grid.numPanels(), kGrainPanels, [&](size_t pb, size_t pe) {
        for (size_t p = pb; p < pe; ++p) {
            auto [first, last] = grid.panelTiles(static_cast<Index>(p));
            for (size_t i = first; i < last; ++i)
                for (Index r : grid.tileRows(i))
                    degrees[r] += 1.0;
        }
    });
    s.row_gini = giniCoefficient(std::move(degrees));
    return s;
}

std::vector<double>
hotMassCurve(const TileGrid& grid, const std::vector<double>& fracs)
{
    std::vector<double> tile_nnz;
    tile_nnz.reserve(grid.numTiles());
    double total = 0;
    for (size_t i = 0; i < grid.numTiles(); ++i) {
        tile_nnz.push_back(static_cast<double>(grid.tile(i).nnz));
        total += tile_nnz.back();
    }
    std::sort(tile_nnz.begin(), tile_nnz.end(), std::greater<>());
    // Prefix sums over the sorted tiles.
    std::vector<double> prefix(tile_nnz.size() + 1, 0.0);
    for (size_t i = 0; i < tile_nnz.size(); ++i)
        prefix[i + 1] = prefix[i] + tile_nnz[i];

    std::vector<double> out;
    out.reserve(fracs.size());
    for (double f : fracs) {
        HT_ASSERT(f > 0.0 && f <= 1.0, "fraction out of (0, 1]");
        if (tile_nnz.empty() || total <= 0) {
            out.push_back(0.0);
            continue;
        }
        size_t k = std::max<size_t>(
            1, static_cast<size_t>(std::llround(f * double(tile_nnz.size()))));
        k = std::min(k, tile_nnz.size());
        out.push_back(prefix[k] / total);
    }
    return out;
}

} // namespace hottiles
