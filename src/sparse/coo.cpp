#include "sparse/coo.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/metrics.hpp"

namespace hottiles {

std::vector<size_t>
rowAlignedChunkBounds(const std::vector<Index>& rows, size_t grain)
{
    const size_t n = rows.size();
    if (grain == 0)
        grain = 1;
    std::vector<size_t> bounds;
    bounds.reserve(n / grain + 2);
    bounds.push_back(0);
    size_t b = 0;
    while (b < n) {
        size_t e = std::min(n, b + grain);
        while (e < n && rows[e] == rows[e - 1])
            ++e;
        bounds.push_back(e);
        b = e;
    }
    return bounds;
}

CooMatrix::CooMatrix(Index rows, Index cols, std::vector<Nonzero> nnzs)
    : rows_(rows), cols_(cols)
{
    reserve(nnzs.size());
    for (const auto& nz : nnzs)
        push(nz.row, nz.col, nz.val);
}

CooMatrix::CooMatrix(Index rows, Index cols, std::vector<Index> row_ids,
                     std::vector<Index> col_ids, std::vector<Value> vals)
    : rows_(rows), cols_(cols), row_ids_(std::move(row_ids)),
      col_ids_(std::move(col_ids)), vals_(std::move(vals))
{
    HT_ASSERT(row_ids_.size() == col_ids_.size() &&
                  row_ids_.size() == vals_.size(),
              "adopted arrays must have equal length");
}

double
CooMatrix::avgDegree() const
{
    return rows_ ? static_cast<double>(nnz()) / rows_ : 0.0;
}

double
CooMatrix::density() const
{
    double cells = static_cast<double>(rows_) * static_cast<double>(cols_);
    return cells > 0.0 ? static_cast<double>(nnz()) / cells : 0.0;
}

void
CooMatrix::push(Index r, Index c, Value v)
{
    HT_ASSERT(r < rows_ && c < cols_, "nonzero (", r, ",", c,
              ") outside ", rows_, "x", cols_);
    if (row_ids_.size() == row_ids_.capacity())
        MetricsRegistry::global().counter("alloc.coo_regrow").add();
    row_ids_.push_back(r);
    col_ids_.push_back(c);
    vals_.push_back(v);
}

void
CooMatrix::reserve(size_t n)
{
    row_ids_.reserve(n);
    col_ids_.reserve(n);
    vals_.reserve(n);
}

namespace {

/**
 * Sort the three parallel arrays by a (row,col) comparator via
 * permutation.  Equal coordinates keep insertion order (stable): the
 * streamed `.htb` converter sums duplicates per panel in file order and
 * must produce bit-identical float sums to this path.
 */
template <typename Less>
void
sortParallel(std::vector<Index>& rs, std::vector<Index>& cs,
             std::vector<Value>& vs, Less less)
{
    std::vector<uint32_t> perm(rs.size());
    std::iota(perm.begin(), perm.end(), 0u);
    std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
        if (less(rs[a], cs[a], rs[b], cs[b]))
            return true;
        if (less(rs[b], cs[b], rs[a], cs[a]))
            return false;
        return a < b;
    });
    std::vector<Index> rs2(rs.size()), cs2(cs.size());
    std::vector<Value> vs2(vs.size());
    for (size_t i = 0; i < perm.size(); ++i) {
        rs2[i] = rs[perm[i]];
        cs2[i] = cs[perm[i]];
        vs2[i] = vs[perm[i]];
    }
    rs.swap(rs2);
    cs.swap(cs2);
    vs.swap(vs2);
}

} // namespace

void
CooMatrix::sortRowMajor()
{
    sortParallel(row_ids_, col_ids_, vals_,
                 [](Index r1, Index c1, Index r2, Index c2) {
                     return r1 != r2 ? r1 < r2 : c1 < c2;
                 });
}

void
CooMatrix::sortColMajor()
{
    sortParallel(row_ids_, col_ids_, vals_,
                 [](Index r1, Index c1, Index r2, Index c2) {
                     return c1 != c2 ? c1 < c2 : r1 < r2;
                 });
}

bool
CooMatrix::isRowMajorSorted() const
{
    for (size_t i = 1; i < nnz(); ++i) {
        if (row_ids_[i] < row_ids_[i - 1] ||
            (row_ids_[i] == row_ids_[i - 1] && col_ids_[i] < col_ids_[i - 1]))
            return false;
    }
    return true;
}

void
CooMatrix::dedupSum()
{
    HT_ASSERT(isRowMajorSorted(), "dedupSum requires row-major order");
    size_t out = 0;
    for (size_t i = 0; i < nnz(); ++i) {
        if (out > 0 && row_ids_[out - 1] == row_ids_[i] &&
            col_ids_[out - 1] == col_ids_[i]) {
            vals_[out - 1] += vals_[i];
        } else {
            row_ids_[out] = row_ids_[i];
            col_ids_[out] = col_ids_[i];
            vals_[out] = vals_[i];
            ++out;
        }
    }
    row_ids_.resize(out);
    col_ids_.resize(out);
    vals_.resize(out);
}

CooMatrix
CooMatrix::transposed() const
{
    CooMatrix t(cols_, rows_);
    t.reserve(nnz());
    for (size_t i = 0; i < nnz(); ++i)
        t.push(col_ids_[i], row_ids_[i], vals_[i]);
    t.sortRowMajor();
    return t;
}

CooMatrix
CooMatrix::symmetrized() const
{
    HT_ASSERT(rows_ == cols_, "symmetrized requires a square matrix");
    CooMatrix s(rows_, cols_);
    s.reserve(2 * nnz());
    for (size_t i = 0; i < nnz(); ++i) {
        s.push(row_ids_[i], col_ids_[i], vals_[i]);
        if (row_ids_[i] != col_ids_[i])
            s.push(col_ids_[i], row_ids_[i], vals_[i]);
    }
    s.sortRowMajor();
    s.dedupSum();
    return s;
}

CooMatrix
CooMatrix::permutedSymmetric(const std::vector<Index>& perm) const
{
    HT_ASSERT(rows_ == cols_, "permutedSymmetric requires a square matrix");
    HT_ASSERT(perm.size() == rows_, "permutation size mismatch");
    CooMatrix p(rows_, cols_);
    p.reserve(nnz());
    for (size_t i = 0; i < nnz(); ++i)
        p.push(perm[row_ids_[i]], perm[col_ids_[i]], vals_[i]);
    p.sortRowMajor();
    return p;
}

std::vector<Index>
CooMatrix::rowDegrees() const
{
    std::vector<Index> deg(rows_, 0);
    for (Index r : row_ids_)
        ++deg[r];
    return deg;
}

bool
CooMatrix::sameStructure(const CooMatrix& other) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_ || nnz() != other.nnz())
        return false;
    CooMatrix a = *this;
    CooMatrix b = other;
    a.sortRowMajor();
    b.sortRowMajor();
    return a.row_ids_ == b.row_ids_ && a.col_ids_ == b.col_ids_;
}

} // namespace hottiles
