#include "sparse/panel_stream.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hottiles {

CooPanelSource::CooPanelSource(const CooMatrix& a) : a_(a)
{
    HT_ASSERT(a.isRowMajorSorted(),
              "CooPanelSource requires row-major sorted input");
}

size_t
CooPanelSource::beginEntry(Index panel_rows, Index p) const
{
    HT_ASSERT(panel_rows > 0, "panel height must be positive");
    const uint64_t row0 = uint64_t(p) * panel_rows;
    if (row0 >= a_.rows())
        return a_.nnz();
    const auto& ids = a_.rowIds();
    return std::lower_bound(ids.begin(), ids.end(),
                            static_cast<Index>(row0)) -
           ids.begin();
}

std::span<const Index>
CooPanelSource::rowIds(size_t first, size_t last) const
{
    return {a_.rowIds().data() + first, last - first};
}

std::span<const Index>
CooPanelSource::colIds(size_t first, size_t last) const
{
    return {a_.colIds().data() + first, last - first};
}

std::span<const Value>
CooPanelSource::vals(size_t first, size_t last) const
{
    return {a_.values().data() + first, last - first};
}

} // namespace hottiles
