#pragma once

/**
 * @file
 * Generalized SpMM over algebraic semirings (§II-A, Davis et al.):
 * same memory access pattern as SpMM, different arithmetic intensity.
 * The functional side provides reference semiring kernels (used to
 * validate the AI sweep of Fig 14 and the GNN example); the performance
 * side maps a semiring's per-nonzero operation count to the
 * KernelConfig::ai_factor the model and simulator consume.
 */

#include <functional>
#include <string>

#include "model/worker_traits.hpp"
#include "sparse/coo.hpp"
#include "sparse/dense.hpp"

namespace hottiles {

/**
 * Structural class of a semiring: IteratedMac semirings (plain
 * arithmetic and the synthetic heavy variants) are iterated
 * multiply-accumulates and run on the vectorized gspmm_ai kernel in
 * src/kernels; Generic semirings (tropical, boolean, user-defined)
 * evaluate through the std::function monoids element by element.
 */
enum class SemiringKind
{
    Generic,
    IteratedMac,
};

/** A semiring: generalized multiply (x) and add (+) monoids. */
struct Semiring
{
    std::string name;
    Value identity = 0;  //!< additive identity (initial Dout value)
    std::function<Value(Value, Value)> multiply;
    std::function<Value(Value, Value)> add;
    /**
     * SIMD operations per nonzero relative to plain multiply-accumulate;
     * this becomes KernelConfig::ai_factor for modeling purposes.
     */
    double ops_per_nnz_factor = 1.0;
    SemiringKind kind = SemiringKind::Generic;
    /** Multiply-accumulate repetitions per element (IteratedMac only;
     *  1 is the plain arithmetic semiring). */
    int mac_reps = 1;
};

/** Plain (+, *) arithmetic semiring. */
Semiring arithmeticSemiring();

/** Tropical (min, +) semiring used by shortest-path style kernels. */
Semiring tropicalSemiring();

/** Boolean (or, and) semiring used by reachability kernels. */
Semiring booleanSemiring();

/**
 * A synthetic heavy semiring whose multiply costs @p ai_factor SIMD ops
 * (models the higher-arithmetic-intensity gSpMM variants of Fig 14).
 */
Semiring heavySemiring(double ai_factor);

/** Reference gSpMM: Dout = A (x.+) Din under @p s. */
DenseMatrix referenceGspmm(const CooMatrix& a, const DenseMatrix& din,
                           const Semiring& s);

/** KernelConfig for running @p s at dense width @p k. */
KernelConfig kernelFor(const Semiring& s, uint32_t k = 32);

} // namespace hottiles
