#include "core/outofcore.hpp"

#include <algorithm>
#include <span>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/rss.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "partition/heuristics.hpp"
#include "partition/predicted_runtime.hpp"
#include "sim/merger.hpp"

namespace hottiles {

namespace {

/** Per-panel compact histogram of occupied tile columns (same shape as
 *  TileGrid::build's pass 1, computed one window at a time). */
struct PanelHist
{
    std::vector<Index> tcols;
    std::vector<size_t> counts;
};

/** Per-chunk scratch for the streamed readjust pass. */
struct ReadjustScratch
{
    std::vector<uint32_t> rid_stamp;
    uint32_t generation = 0;
};

} // namespace

StreamedPlan
streamedPlan(const Architecture& arch, const PanelSource& src,
             const StreamedPlanOptions& opts)
{
    HT_ASSERT(arch.hot.count > 0 && arch.cold.count > 0,
              "streamedPlan needs both worker types");
    auto progress = [&](const char* stage) {
        if (opts.progress)
            opts.progress(stage);
    };

    StreamedPlan plan;
    plan.rows = src.rows();
    plan.cols = src.cols();
    plan.nnz = src.nnz();
    plan.tile_h = arch.tile_height;
    plan.tile_w = arch.tile_width;
    HT_ASSERT(plan.tile_h > 0 && plan.tile_w > 0, "tile dims must be > 0");
    plan.num_panels = static_cast<Index>(ceilDiv(plan.rows, plan.tile_h));
    plan.num_tcols = static_cast<Index>(ceilDiv(plan.cols, plan.tile_w));
    const Index window =
        opts.window_panels > 0 ? opts.window_panels : Index(32);
    // Windows are entry-budgeted, not fixed-width: a skewed matrix
    // (RMAT's dense top rows) concentrates a large share of the
    // nonzeros in a few panels, and a fixed panel count would make the
    // scratch high-water O(that share).  The budget is `window` average
    // panel populations; a window always advances at least one panel,
    // so the bound degrades gracefully to the largest single panel.
    // Per-panel results are window-independent, so this only moves the
    // memory/parallelism trade-off, never the plan bits.
    const size_t entry_budget =
        size_t(window) *
        std::max<size_t>(
            1, ceilDiv(plan.nnz, size_t(std::max<Index>(1, plan.num_panels))));
    auto windowEnd = [&](Index p0) {
        const size_t first = src.beginEntry(plan.tile_h, p0);
        Index p1 = p0 + 1;
        while (p1 < plan.num_panels && p1 - p0 < window &&
               src.beginEntry(plan.tile_h, p1 + 1) - first <= entry_budget)
            ++p1;
        return p1;
    };

    // ---- Pass A: scan + model, one panel window at a time.  Each
    // window is validated, histogrammed, appended to the directory
    // (global running offset), scattered into a window-local scratch
    // for the unique-id statistics, estimated, and released.  Panels
    // are independent and chunk bounds depend only on the range, so
    // every Tile and TileEstimate comes out bit-identical to the
    // in-memory TileGrid + estimateTiles path regardless of thread
    // count or window size.
    progress("scan");
    plan.panel_begin.assign(size_t(plan.num_panels) + 1, 0);
    std::vector<PanelHist> hist;
    std::vector<Index> srows;  // window-local tiled-order row ids
    std::vector<Index> scols;  // window-local tiled-order column ids
    std::vector<size_t> pstart;
    double scan_s = 0;
    double model_s = 0;

    for (Index p0 = 0; p0 < plan.num_panels; p0 = windowEnd(p0)) {
        const Index p1 = windowEnd(p0);
        const Index wp = p1 - p0;
        double t0 = monotonicSeconds();

        pstart.resize(size_t(wp) + 1);
        for (Index p = p0; p <= p1; ++p)
            pstart[p - p0] = src.beginEntry(plan.tile_h, p);
        const size_t wfirst = pstart.front();
        const size_t wlast = pstart.back();
        auto rows_sp = src.rowIds(wfirst, wlast);
        auto cols_sp = src.colIds(wfirst, wlast);

        // Validate + pass 1 histograms, parallel over the window's
        // panels.  Row-panel membership plus in-panel (row, col) order
        // imply global row-major order; the cross-window boundary is
        // covered by panel membership alone.
        hist.assign(wp, PanelHist{});
        parallelFor(0, wp, kGrainPanels, [&](size_t pb, size_t pe) {
            std::vector<size_t> cnt(plan.num_tcols, 0);
            for (size_t pw = pb; pw < pe; ++pw) {
                const Index p = p0 + Index(pw);
                const Index prow0 = static_cast<Index>(
                    std::min<uint64_t>(uint64_t(p) * plan.tile_h, plan.rows));
                const Index prow1 = static_cast<Index>(std::min<uint64_t>(
                    uint64_t(p + 1) * plan.tile_h, plan.rows));
                PanelHist& h = hist[pw];
                Index pr = 0, pc = 0;
                bool first_entry = true;
                for (size_t i = pstart[pw]; i < pstart[pw + 1]; ++i) {
                    const Index r = rows_sp[i - wfirst];
                    const Index c = cols_sp[i - wfirst];
                    HT_FATAL_IF(r < prow0 || r >= prow1 || c >= plan.cols,
                                "streamed entry ", i, " (", r, ",", c,
                                ") outside panel ", p, " of the ", plan.rows,
                                "x", plan.cols, " matrix");
                    HT_FATAL_IF(!first_entry &&
                                    (r < pr || (r == pr && c < pc)),
                                "streamed entries not row-major sorted at ",
                                i);
                    first_entry = false;
                    pr = r;
                    pc = c;
                    Index tc = c / plan.tile_w;
                    if (cnt[tc]++ == 0)
                        h.tcols.push_back(tc);
                }
                std::sort(h.tcols.begin(), h.tcols.end());
                h.counts.resize(h.tcols.size());
                for (size_t j = 0; j < h.tcols.size(); ++j) {
                    h.counts[j] = cnt[h.tcols[j]];
                    cnt[h.tcols[j]] = 0;
                }
            }
        });

        // Directory append in (panel, tcol) order.  The global nonzero
        // offset of the window's first tile equals wfirst: offsets
        // accumulate every previous panel's entries.
        const size_t tiles_before = plan.tiles.size();
        size_t offset = wfirst;
        for (Index pw = 0; pw < wp; ++pw) {
            const Index p = p0 + pw;
            plan.panel_begin[p] = plan.tiles.size();
            const PanelHist& h = hist[pw];
            for (size_t j = 0; j < h.tcols.size(); ++j) {
                Tile t{};
                t.panel = p;
                t.tcol = h.tcols[j];
                t.row0 = p * plan.tile_h;
                t.col0 = t.tcol * plan.tile_w;
                t.height = std::min<Index>(plan.tile_h, plan.rows - t.row0);
                t.width = std::min<Index>(plan.tile_w, plan.cols - t.col0);
                t.offset = offset;
                t.nnz = h.counts[j];
                offset += t.nnz;
                plan.tiles.push_back(t);
            }
        }

        // Pass 2 (window-local): stable counting-sort scatter of the
        // window's row and column ids into tiled order — the same walk
        // as TileGrid::build's pass 2, with positions rebased by
        // wfirst.  Values are never touched in plan mode.
        srows.resize(wlast - wfirst);
        scols.resize(wlast - wfirst);
        parallelFor(0, wp, kGrainPanels, [&](size_t pb, size_t pe) {
            std::vector<size_t> cursor(plan.num_tcols);
            for (size_t pw = pb; pw < pe; ++pw) {
                const size_t first = plan.panel_begin[p0 + pw];
                const size_t last = pw + 1 < size_t(wp)
                                        ? plan.panel_begin[p0 + pw + 1]
                                        : plan.tiles.size();
                for (size_t t = first; t < last; ++t)
                    cursor[plan.tiles[t].tcol] =
                        plan.tiles[t].offset - wfirst;
                for (size_t i = pstart[pw]; i < pstart[pw + 1]; ++i) {
                    const size_t pos =
                        cursor[cols_sp[i - wfirst] / plan.tile_w]++;
                    srows[pos] = rows_sp[i - wfirst];
                    scols[pos] = cols_sp[i - wfirst];
                }
            }
        });

        // Pass 3: per-tile unique row/column counts, exactly like
        // TileGrid's pass 3 (rows are sorted within a tile; columns via
        // a stamped scratch array).
        parallelFor(tiles_before, plan.tiles.size(), kGrainTiles,
                    [&](size_t tb, size_t te) {
                        std::vector<uint32_t> col_stamp(plan.tile_w, 0);
                        uint32_t generation = 0;
                        for (size_t ti = tb; ti < te; ++ti) {
                            Tile& t = plan.tiles[ti];
                            ++generation;
                            Index uniq_r = 0;
                            Index uniq_c = 0;
                            Index prev_row = ~Index(0);
                            const size_t base = t.offset - wfirst;
                            for (size_t i = base; i < base + t.nnz; ++i) {
                                if (srows[i] != prev_row) {
                                    ++uniq_r;
                                    prev_row = srows[i];
                                }
                                Index local_c = scols[i] - t.col0;
                                if (col_stamp[local_c] != generation) {
                                    col_stamp[local_c] = generation;
                                    ++uniq_c;
                                }
                            }
                            t.uniq_rids = uniq_r;
                            t.uniq_cids = uniq_c;
                        }
                    });

        double t1 = monotonicSeconds();
        scan_s += t1 - t0;

        // Model: one estimate per window tile; elementwise pure, so the
        // chunking cannot affect the result.
        if (p0 == 0)
            progress("model");
        plan.estimates.resize(plan.tiles.size());
        parallelFor(tiles_before, plan.tiles.size(), kGrainTiles,
                    [&](size_t tb, size_t te) {
                        for (size_t i = tb; i < te; ++i)
                            plan.estimates[i] =
                                estimateTile(plan.tiles[i], arch.hot,
                                             arch.cold, opts.kernel);
                    });
        model_s += monotonicSeconds() - t1;

        src.release(wfirst, wlast);
        recordPeakRss();
    }
    plan.panel_begin[plan.num_panels] = plan.tiles.size();
    plan.timing.scan_s = scan_s;
    plan.timing.model_s = model_s;

    hist.clear();
    hist.shrink_to_fit();
    scols.clear();
    scols.shrink_to_fit();
    srows.clear();
    srows.shrink_to_fit();

    // ---- Pass B: grid-free partitioning.  The heuristic sweep is a
    // pure function of the estimates and worker counts; the §IV-C
    // readjustment needs per-tile row walks only for untiled-traversal
    // InterTile workers, in which case the windows are streamed once
    // more.  Totals and cycles go through the exact code paths the
    // in-memory hotTilesPartition uses, so the winning partition —
    // including predicted_cycles — is bit-identical.
    progress("partition");
    double t2 = monotonicSeconds();
    const bool no_merge =
        arch.atomic_rmw || opts.kernel.kind == SparseKernel::Sddmm;
    const double t_merge =
        no_merge ? 0.0
                 : mergeCycles(plan.rows, opts.kernel.k,
                               arch.cold.value_bytes, arch.bwBytesPerCycle(),
                               arch.line_bytes);
    const double hot_bw = arch.pcie_gbps > 0
                              ? arch.pcie_gbps / arch.freq_ghz
                              : arch.bwBytesPerCycle();
    PartitionContext ctx = makePartitionContextFromDirectory(
        plan.tiles.data(), plan.tiles.size(), std::move(plan.estimates),
        arch.hot, arch.cold, opts.kernel, arch.bwBytesPerCycle(), t_merge,
        no_merge, hot_bw);

    const std::vector<Heuristic> hs = applicableHeuristicSet(ctx);
    std::vector<Partition> cands(hs.size());
    parallelFor(0, hs.size(), 1, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i)
            cands[i] = heuristicSweepCandidate(ctx, hs[i]);
    });

    const size_t n = plan.tiles.size();
    auto needsRowWalk = [](const WorkerTraits& w) {
        return w.dout_reuse == ReuseType::InterTile &&
               w.traversal != TraversalOrder::TiledRowMajor;
    };
    const bool stream_readjust =
        needsRowWalk(arch.hot) || needsRowWalk(arch.cold);

    std::vector<std::vector<double>> extra_hot(cands.size()),
        extra_cold(cands.size());
    for (size_t c = 0; c < cands.size(); ++c) {
        extra_hot[c].assign(n, 0.0);
        extra_cold[c].assign(n, 0.0);
    }
    auto tile_at = [&](size_t t) -> const Tile& { return plan.tiles[t]; };

    if (!stream_readjust) {
        // Tiled-traversal (or no-reuse) workers: extras depend only on
        // tile heights and the membership pattern — the directory is
        // enough, no second pass over the data.
        auto no_rows = [](size_t) { return std::span<const Index>{}; };
        for (size_t c = 0; c < cands.size(); ++c) {
            const std::vector<uint8_t>& is_hot = cands[c].is_hot;
            parallelFor(
                0, plan.num_panels, kGrainPanels,
                [&](size_t pb, size_t pe) {
                    ReadjustScratch scratch;
                    scratch.rid_stamp.assign(plan.tile_h, 0);
                    for (size_t p = pb; p < pe; ++p) {
                        const size_t first = plan.panel_begin[p];
                        const size_t last = plan.panel_begin[p + 1];
                        panelReadjustExtras(
                            arch.hot, opts.kernel, is_hot.data(), true,
                            first, last, tile_at, no_rows,
                            scratch.rid_stamp, scratch.generation,
                            extra_hot[c].data() + first);
                        panelReadjustExtras(
                            arch.cold, opts.kernel, is_hot.data(), false,
                            first, last, tile_at, no_rows,
                            scratch.rid_stamp, scratch.generation,
                            extra_cold[c].data() + first);
                    }
                });
        }
    } else {
        // Untiled InterTile workers: stream the windows again, scatter
        // each window's row ids into tiled order, and run the shared
        // readjust template per candidate.  Per-panel extras are
        // independent, so the window decomposition cannot change them.
        for (Index p0 = 0; p0 < plan.num_panels; p0 = windowEnd(p0)) {
            const Index p1 = windowEnd(p0);
            const Index wp = p1 - p0;
            pstart.resize(size_t(wp) + 1);
            for (Index p = p0; p <= p1; ++p)
                pstart[p - p0] = src.beginEntry(plan.tile_h, p);
            const size_t wfirst = pstart.front();
            const size_t wlast = pstart.back();
            auto rows_sp = src.rowIds(wfirst, wlast);
            auto cols_sp = src.colIds(wfirst, wlast);

            srows.resize(wlast - wfirst);
            parallelFor(0, wp, kGrainPanels, [&](size_t pb, size_t pe) {
                std::vector<size_t> cursor(plan.num_tcols);
                for (size_t pw = pb; pw < pe; ++pw) {
                    const Index p = p0 + Index(pw);
                    for (size_t t = plan.panel_begin[p];
                         t < plan.panel_begin[p + 1]; ++t)
                        cursor[plan.tiles[t].tcol] =
                            plan.tiles[t].offset - wfirst;
                    for (size_t i = pstart[pw]; i < pstart[pw + 1]; ++i)
                        srows[cursor[cols_sp[i - wfirst] / plan.tile_w]++] =
                            rows_sp[i - wfirst];
                }
            });

            auto rows_of = [&](size_t t) {
                return std::span<const Index>(
                    srows.data() + (plan.tiles[t].offset - wfirst),
                    plan.tiles[t].nnz);
            };
            for (size_t c = 0; c < cands.size(); ++c) {
                const std::vector<uint8_t>& is_hot = cands[c].is_hot;
                parallelFor(
                    p0, p1, kGrainPanels, [&](size_t pb, size_t pe) {
                        ReadjustScratch scratch;
                        scratch.rid_stamp.assign(plan.tile_h, 0);
                        for (size_t p = pb; p < pe; ++p) {
                            const size_t first = plan.panel_begin[p];
                            const size_t last = plan.panel_begin[p + 1];
                            panelReadjustExtras(
                                arch.hot, opts.kernel, is_hot.data(), true,
                                first, last, tile_at, rows_of,
                                scratch.rid_stamp, scratch.generation,
                                extra_hot[c].data() + first);
                            panelReadjustExtras(
                                arch.cold, opts.kernel, is_hot.data(),
                                false, first, last, tile_at, rows_of,
                                scratch.rid_stamp, scratch.generation,
                                extra_cold[c].data() + first);
                        }
                    });
            }
            src.release(wfirst, wlast);
            recordPeakRss();
        }
    }
    srows.clear();
    srows.shrink_to_fit();

    for (size_t c = 0; c < cands.size(); ++c) {
        AssignmentTotals totals = assignmentTotalsWithExtras(
            ctx, cands[c].is_hot, extra_hot[c], extra_cold[c]);
        cands[c].predicted_cycles = cands[c].serial
                                        ? predictedSerialCycles(ctx, totals)
                                        : predictedParallelCycles(ctx, totals);
        extra_hot[c].clear();
        extra_hot[c].shrink_to_fit();
        extra_cold[c].clear();
        extra_cold[c].shrink_to_fit();
    }
    plan.partition = cands[bestPartitionIndex(cands)];
    plan.estimates = std::move(ctx.estimates);
    plan.timing.partition_s = monotonicSeconds() - t2;

    MetricsRegistry& reg = MetricsRegistry::global();
    reg.timer("preprocess.scan").observe(plan.timing.scan_s);
    reg.timer("preprocess.model").observe(plan.timing.model_s);
    reg.timer("preprocess.partition").observe(plan.timing.partition_s);
    recordPeakRss();
    return plan;
}

} // namespace hottiles
