#pragma once

/**
 * @file
 * Reference implementations of the additional sparse kernels HotTiles
 * supports (§X): SpMV (SpMM with K = 1) and SDDMM (sampled dense-dense
 * matrix multiplication).  Both share SpMM's per-nonzero access pattern
 * — dense rows indexed by the nonzero's r_id and c_id — so the same
 * tile model and partitioner apply; only the task traffic differs
 * (encoded in KernelConfig::kind).
 */

#include <vector>

#include "sparse/coo.hpp"
#include "sparse/dense.hpp"

namespace hottiles {

/** Reference SpMV: y = A x (double accumulation). */
std::vector<Value> referenceSpmv(const CooMatrix& a,
                                 const std::vector<Value>& x);

/**
 * Reference SDDMM: out(i,j) = A(i,j) * dot(U[i,:], V[j,:]) for every
 * nonzero (i,j) of A.  @p u has A.rows() rows, @p v has A.cols() rows;
 * both have the same column count K.  The result preserves A's sorted
 * structure with recomputed values.
 */
CooMatrix referenceSddmm(const CooMatrix& a, const DenseMatrix& u,
                         const DenseMatrix& v);

/** Pack a vector into an Nx1 dense matrix (SpMV as SpMM with K = 1). */
DenseMatrix vectorAsMatrix(const std::vector<Value>& x);

/** Unpack an Nx1 dense matrix into a vector. */
std::vector<Value> matrixAsVector(const DenseMatrix& m);

} // namespace hottiles
