#include "core/tile_search.hpp"

#include <limits>

#include "common/error.hpp"
#include "core/hottiles.hpp"
#include "sim/scratchpad.hpp"

namespace hottiles {

Index
maxTileWidth(const Architecture& arch, const KernelConfig& kernel,
             Index free_cap)
{
    if (arch.hot.din_reuse != ReuseType::IntraTileStream ||
        arch.hot.scratchpad_bytes == 0)
        return free_cap;
    uint64_t dim = Scratchpad::maxTileDim(arch.hot.scratchpad_bytes,
                                          kernel.k, arch.hot.value_bytes,
                                          /*buffers=*/2);
    return static_cast<Index>(std::min<uint64_t>(dim, free_cap));
}

TileSizeSearchResult
searchTileSize(const Architecture& arch, const CooMatrix& a,
               const KernelConfig& kernel,
               const std::vector<Index>& candidates)
{
    const Index cap = maxTileWidth(arch, kernel);
    TileSizeSearchResult result;
    result.best.predicted_cycles = std::numeric_limits<double>::infinity();

    for (Index size : candidates) {
        if (size == 0 || size > cap)
            continue;
        Architecture probe = arch;
        probe.tile_height = size;
        probe.tile_width = size;
        HotTilesOptions opts;
        opts.kernel = kernel;
        opts.build_formats = false;
        HotTiles ht(probe, a, opts);

        TileSizeCandidate cand;
        cand.tile_height = size;
        cand.tile_width = size;
        cand.predicted_cycles = ht.partition().predicted_cycles;
        cand.tiles = ht.grid().numTiles();
        result.candidates.push_back(cand);
        if (cand.predicted_cycles < result.best.predicted_cycles)
            result.best = cand;
    }
    HT_ASSERT(!result.candidates.empty(),
              "no tile-size candidate fits the scratchpad (cap ", cap, ")");
    return result;
}

} // namespace hottiles
