#include "core/preprocess.hpp"

#include <chrono>

namespace hottiles {

double
monotonicSeconds()
{
    auto now = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration<double>(now).count();
}

} // namespace hottiles
