#include "core/explorer.hpp"

#include "common/error.hpp"
#include "common/string_util.hpp"
#include "core/calibrate.hpp"
#include "core/hottiles.hpp"
#include "partition/predicted_runtime.hpp"
#include "sim/simulator.hpp"

namespace hottiles {

std::string
ExplorationPoint::label() const
{
    return strPrintf("%d-%d", cold_scale, hot_scale);
}

std::vector<ExplorationPoint>
exploreIsoScale(const CooMatrix& a, int total_scale,
                const KernelConfig& kernel)
{
    HT_ASSERT(total_scale >= 1, "need a positive total scale");
    std::vector<ExplorationPoint> pts;

    for (int cold = 0; cold <= total_scale; ++cold) {
        const int hot = total_scale - cold;
        ExplorationPoint pt;
        pt.cold_scale = cold;
        pt.hot_scale = hot;

        Architecture arch = makeSpadeSextansSkewed(cold, hot);
        HotTilesOptions opts;
        opts.kernel = kernel;
        opts.build_formats = false;

        if (cold == 0 || hot == 0) {
            // Homogeneous endpoint: no partitioning; predict and
            // simulate the single worker type.  Calibration needs both
            // types, so borrow the missing type from the balanced split
            // purely to form a valid context (its tiles get none).
            Architecture probe = makeSpadeSextansSkewed(
                cold == 0 ? total_scale / 2 + 1 : cold,
                hot == 0 ? total_scale / 2 + 1 : hot);
            if (cold == 0)
                probe.hot = arch.hot;
            else
                probe.cold = arch.cold;
            probe.name = arch.name + " (probe)";
            calibrateArchitecture(probe);
            TileGrid grid(a, probe.tile_height, probe.tile_width);
            PartitionContext ctx = makePartitionContext(
                grid, probe.hot, probe.cold, kernel,
                probe.bwBytesPerCycle(), 0.0, probe.atomic_rmw);
            pt.predicted_cycles =
                predictedHomogeneousCycles(ctx, /*hot=*/cold == 0);
            pt.actual_cycles = double(
                simulateHomogeneous(probe, grid, cold == 0, kernel)
                    .stats.cycles);
        } else {
            calibrateArchitecture(arch);
            HotTiles ht(arch, a, opts);
            pt.predicted_cycles = ht.partition().predicted_cycles;
            pt.actual_cycles =
                double(simulateExecution(arch, ht.grid(),
                                         ht.partition().is_hot,
                                         ht.partition().serial, kernel)
                           .stats.cycles);
        }
        pts.push_back(pt);
    }
    return pts;
}

namespace {

size_t
argmin(const std::vector<ExplorationPoint>& pts, bool predicted)
{
    HT_ASSERT(!pts.empty(), "no exploration points");
    size_t best = 0;
    for (size_t i = 1; i < pts.size(); ++i) {
        double a = predicted ? pts[i].predicted_cycles : pts[i].actual_cycles;
        double b = predicted ? pts[best].predicted_cycles
                             : pts[best].actual_cycles;
        if (a < b)
            best = i;
    }
    return best;
}

} // namespace

size_t
bestPredicted(const std::vector<ExplorationPoint>& pts)
{
    return argmin(pts, true);
}

size_t
bestActual(const std::vector<ExplorationPoint>& pts)
{
    return argmin(pts, false);
}

} // namespace hottiles
