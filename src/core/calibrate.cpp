#include "core/calibrate.hpp"

#include <map>
#include <mutex>

#include "common/log.hpp"
#include "model/calibration.hpp"
#include "partition/partition.hpp"
#include "partition/predicted_runtime.hpp"
#include "sim/simulator.hpp"
#include "sparse/generators.hpp"

namespace hottiles {

namespace {

/** Small, structurally diverse profiling matrices (§VI-B). */
std::vector<CooMatrix>
profilingMatrices()
{
    std::vector<CooMatrix> ms;
    ms.push_back(genUniform(4096, 4096, 40000, 0xCA11B001));
    ms.push_back(genRmat(4096, 60000, 0.57, 0.19, 0.19, 0.05, 0xCA11B002));
    ms.push_back(genMesh(8192, 8.0, 30.0, 0xCA11B003));
    return ms;
}

/** Samples for one worker type: prediction closure + simulated cycles. */
std::vector<CalibrationSample>
makeSamples(const Architecture& arch, bool hot_type,
            const std::vector<CooMatrix>& matrices,
            const std::vector<TileGrid>& grids)
{
    KernelConfig kernel;  // K = 32, plain SpMM
    std::vector<CalibrationSample> samples;
    for (size_t i = 0; i < matrices.size(); ++i) {
        const TileGrid& grid = grids[i];
        SimOutput sim = simulateHomogeneous(arch, grid, hot_type, kernel);

        CalibrationSample s;
        s.actual_cycles = double(sim.stats.cycles);
        s.predict = [&arch, &grid, hot_type, kernel](double vis_lat) {
            Architecture probe = arch;
            (hot_type ? probe.hot : probe.cold).vis_lat = vis_lat;
            double hot_bw = probe.pcie_gbps > 0
                                ? probe.pcie_gbps / probe.freq_ghz
                                : probe.bwBytesPerCycle();
            PartitionContext ctx = makePartitionContext(
                grid, probe.hot, probe.cold, kernel,
                probe.bwBytesPerCycle(), 0.0, probe.atomic_rmw, hot_bw);
            return predictedHomogeneousCycles(ctx, hot_type);
        };
        samples.push_back(std::move(s));
    }
    return samples;
}

std::map<std::string, ArchCalibration>&
cache()
{
    static std::map<std::string, ArchCalibration> c;
    return c;
}

} // namespace

ArchCalibration
calibrateArchitecture(Architecture& arch, bool force)
{
    auto it = cache().find(arch.name);
    if (!force && it != cache().end()) {
        arch.hot.vis_lat = it->second.hot_vis_lat;
        arch.cold.vis_lat = it->second.cold_vis_lat;
        return it->second;
    }

    std::vector<CooMatrix> matrices = profilingMatrices();
    std::vector<TileGrid> grids;
    grids.reserve(matrices.size());
    for (const auto& m : matrices)
        grids.emplace_back(m, arch.tile_height, arch.tile_width);

    ArchCalibration result;
    {
        auto samples = makeSamples(arch, /*hot=*/true, matrices, grids);
        CalibrationResult r = calibrateVisLat(samples);
        result.hot_vis_lat = r.vis_lat;
        result.hot_error = r.mean_rel_error;
    }
    {
        auto samples = makeSamples(arch, /*hot=*/false, matrices, grids);
        CalibrationResult r = calibrateVisLat(samples);
        result.cold_vis_lat = r.vis_lat;
        result.cold_error = r.mean_rel_error;
    }
    arch.hot.vis_lat = result.hot_vis_lat;
    arch.cold.vis_lat = result.cold_vis_lat;
    cache()[arch.name] = result;
    logInfo("calibrated ", arch.name, ": hot vis_lat=", result.hot_vis_lat,
            " (err ", result.hot_error, "), cold vis_lat=",
            result.cold_vis_lat, " (err ", result.cold_error, ")");
    return result;
}

Architecture
calibrated(Architecture arch)
{
    calibrateArchitecture(arch);
    return arch;
}

} // namespace hottiles
