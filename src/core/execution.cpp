#include "core/execution.hpp"

#include <iterator>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "sim/worklist.hpp"

namespace hottiles {

const char*
strategyName(Strategy s)
{
    switch (s) {
      case Strategy::HotOnly: return "HotOnly";
      case Strategy::ColdOnly: return "ColdOnly";
      case Strategy::BestHomogeneous: return "BestHomogeneous";
      case Strategy::IUnaware: return "IUnaware";
      case Strategy::HotTiles: return "HotTiles";
    }
    HT_PANIC("unreachable strategy");
}

StrategyOutcome
simulatePartition(const HotTiles& ht, const Partition& p, Strategy tag,
                  const SimConfig& scfg)
{
    StrategyOutcome o;
    o.strategy = tag;
    o.partition = p;
    o.predicted_cycles = p.predicted_cycles;
    SimConfig cfg = scfg;
    cfg.compute_values = false;
    cfg.din = nullptr;
    cfg.u = nullptr;
    o.stats = simulateExecution(ht.arch(), ht.grid(), p.is_hot, p.serial,
                                ht.kernel(), cfg)
                  .stats;
    return o;
}

MatrixEvaluation
evaluateMatrix(const Architecture& arch, const CooMatrix& a,
               const std::string& name, const HotTilesOptions& opts,
               const FaultPlan* faults)
{
    HotTilesOptions o = opts;
    o.build_formats = false;  // the simulator builds work lists itself
    HotTiles ht(arch, a, o);

    MatrixEvaluation ev;
    ev.matrix = name;
    ev.preprocess = ht.timing();

    // The four strategy simulations only read the shared pipeline state
    // (grid, partition context), so they run concurrently; each closure
    // writes its own MatrixEvaluation slot.  Any fault plan applies to
    // every strategy while the predictions stay fault-free, so the
    // evaluation exposes predicted-vs-achieved under faults.
    // The strategies' tile sets largely coincide (HotOnly and a
    // mostly-hot partition want the same all-hot TiledWork, ColdOnly
    // and IUnaware share cold panels), so one cache serves all four
    // concurrent simulations and each distinct work list builds once.
    WorkListCache work_cache;
    SimConfig scfg;
    scfg.faults = faults;
    scfg.work_cache = &work_cache;
    const std::function<void()> sims[] = {
        [&] {
            ev.hot_only.strategy = Strategy::HotOnly;
            ev.hot_only.stats =
                simulateHomogeneous(arch, ht.grid(), /*hot=*/true, o.kernel,
                                    scfg)
                    .stats;
            ev.hot_only.predicted_cycles = ht.predictedHotOnlyCycles();
        },
        [&] {
            ev.cold_only.strategy = Strategy::ColdOnly;
            ev.cold_only.stats =
                simulateHomogeneous(arch, ht.grid(), /*hot=*/false, o.kernel,
                                    scfg)
                    .stats;
            ev.cold_only.predicted_cycles = ht.predictedColdOnlyCycles();
        },
        [&] {
            ev.iunaware = simulatePartition(ht, ht.iunaware(),
                                            Strategy::IUnaware, scfg);
        },
        [&] {
            ev.hottiles = simulatePartition(ht, ht.partition(),
                                            Strategy::HotTiles, scfg);
        },
    };
    parallelFor(0, std::size(sims), 1, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i)
            sims[i]();
    });
    return ev;
}

} // namespace hottiles
