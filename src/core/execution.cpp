#include "core/execution.hpp"

#include <iterator>
#include <memory>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "sim/fault_injector.hpp"
#include "sim/trace.hpp"
#include "sim/worklist.hpp"

namespace hottiles {

const char*
strategyName(Strategy s)
{
    switch (s) {
      case Strategy::HotOnly: return "HotOnly";
      case Strategy::ColdOnly: return "ColdOnly";
      case Strategy::BestHomogeneous: return "BestHomogeneous";
      case Strategy::IUnaware: return "IUnaware";
      case Strategy::HotTiles: return "HotTiles";
    }
    HT_PANIC("unreachable strategy");
}

StrategyOutcome
simulatePartition(const HotTiles& ht, const Partition& p, Strategy tag,
                  const SimConfig& scfg, SimOutput* raw)
{
    StrategyOutcome o;
    o.strategy = tag;
    o.partition = p;
    o.predicted_cycles = p.predicted_cycles;
    SimConfig cfg = scfg;
    cfg.compute_values = false;
    cfg.din = nullptr;
    cfg.u = nullptr;
    SimOutput sim = simulateExecution(ht.arch(), ht.grid(), p.is_hot,
                                      p.serial, ht.kernel(), cfg);
    o.stats = sim.stats;
    if (raw)
        *raw = std::move(sim);
    return o;
}

MatrixEvaluation
evaluateMatrix(const Architecture& arch, const CooMatrix& a,
               const std::string& name, const HotTilesOptions& opts,
               const FaultPlan* faults, const EvalObservability& obs)
{
    HotTilesOptions o = opts;
    o.build_formats = false;  // the simulator builds work lists itself
    HotTiles ht(arch, a, o);

    MatrixEvaluation ev;
    ev.matrix = name;
    ev.preprocess = ht.timing();
    MetricsRegistry::global().counter("evaluate.matrices").add();

    // The four strategy simulations only read the shared pipeline state
    // (grid, partition context), so they run concurrently; each closure
    // writes its own MatrixEvaluation slot.  Any fault plan applies to
    // every strategy while the predictions stay fault-free, so the
    // evaluation exposes predicted-vs-achieved under faults.
    // The strategies' tile sets largely coincide (HotOnly and a
    // mostly-hot partition want the same all-hot TiledWork, ColdOnly
    // and IUnaware share cold panels), so one cache serves all four
    // concurrent simulations and each distinct work list builds once.
    WorkListCache work_cache;
    SimConfig scfg;
    scfg.faults = faults;
    scfg.work_cache = &work_cache;

    // One shared sink serves all four concurrent strategies; a
    // per-strategy prefix decorator keeps their sources separable.
    std::unique_ptr<PrefixedTraceSink> prefixed[4];
    auto strategyCfg = [&](size_t slot, Strategy s) {
        SimConfig cfg = scfg;
        if (obs.trace) {
            prefixed[slot] = std::make_unique<PrefixedTraceSink>(
                *obs.trace, strategyName(s));
            cfg.trace = prefixed[slot].get();
        }
        return cfg;
    };

    // Per-unit prediction error is charged against the HotTiles
    // partition (it is the one exercising both model columns at once).
    // Fault-injected runs skip span collection by design.
    const bool want_prediction =
        (obs.collect_prediction_error || obs.prediction) &&
        (!faults || faults->empty());
    SimOutput hottiles_raw;

    const std::function<void()> sims[] = {
        [&] {
            ScopedTimer t("evaluate.HotOnly");
            ev.hot_only.strategy = Strategy::HotOnly;
            ev.hot_only.stats =
                simulateHomogeneous(arch, ht.grid(), /*hot=*/true, o.kernel,
                                    strategyCfg(0, Strategy::HotOnly))
                    .stats;
            ev.hot_only.predicted_cycles = ht.predictedHotOnlyCycles();
        },
        [&] {
            ScopedTimer t("evaluate.ColdOnly");
            ev.cold_only.strategy = Strategy::ColdOnly;
            ev.cold_only.stats =
                simulateHomogeneous(arch, ht.grid(), /*hot=*/false, o.kernel,
                                    strategyCfg(1, Strategy::ColdOnly))
                    .stats;
            ev.cold_only.predicted_cycles = ht.predictedColdOnlyCycles();
        },
        [&] {
            ScopedTimer t("evaluate.IUnaware");
            ev.iunaware =
                simulatePartition(ht, ht.iunaware(), Strategy::IUnaware,
                                  strategyCfg(2, Strategy::IUnaware));
        },
        [&] {
            ScopedTimer t("evaluate.HotTiles");
            SimConfig cfg = strategyCfg(3, Strategy::HotTiles);
            cfg.collect_spans = want_prediction;
            ev.hottiles =
                simulatePartition(ht, ht.partition(), Strategy::HotTiles,
                                  cfg, want_prediction ? &hottiles_raw
                                                       : nullptr);
        },
    };
    parallelFor(0, std::size(sims), 1, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i)
            sims[i]();
    });
    MetricsRegistry::global().counter("evaluate.strategy_runs")
        .add(std::size(sims));

    if (want_prediction) {
        PredictionErrorTelemetry pred = computePredictionError(
            ht.grid(), ht.context(), ev.hottiles.partition.is_hot,
            hottiles_raw);
        recordPredictionError(pred, strategyName(Strategy::HotTiles));
        if (obs.prediction)
            *obs.prediction = std::move(pred);
    }
    return ev;
}

} // namespace hottiles
