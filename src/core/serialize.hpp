#pragma once

/**
 * @file
 * Partition persistence (§VI-B: the generated formats "can be stored
 * for later use — e.g., generated during GNN training and then saved
 * and reused during GNN inference").  A partition file is a small
 * versioned text header plus the hex-encoded hot/cold bitmap; it is
 * valid only for the same matrix and tile geometry it was created for,
 * which the loader verifies via a structure fingerprint.
 */

#include <iosfwd>
#include <string>

#include "partition/partition.hpp"
#include "sparse/tiling.hpp"

namespace hottiles {

/** A partition together with the geometry it applies to. */
struct PartitionFile
{
    Partition partition;
    std::string matrix_name;
    Index tile_height = 0;
    Index tile_width = 0;
    uint64_t grid_fingerprint = 0;  //!< of the TileGrid it was built on
};

/** Stable fingerprint of a grid (dims, nnz, per-tile layout). */
uint64_t gridFingerprint(const TileGrid& grid);

/** Serialize to a stream. */
void writePartition(const PartitionFile& pf, std::ostream& os);

/** Parse from a stream. @throws FatalError on malformed input. */
PartitionFile readPartition(std::istream& is);

/** Save a partition made on @p grid to @p path. */
void writePartitionFile(const Partition& p, const TileGrid& grid,
                        const std::string& matrix_name,
                        const std::string& path);

/**
 * Load a partition and verify it matches @p grid (tile geometry and
 * fingerprint). @throws FatalError on mismatch.
 */
Partition readPartitionFile(const std::string& path, const TileGrid& grid);

} // namespace hottiles
