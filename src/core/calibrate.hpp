#pragma once

/**
 * @file
 * Architecture calibration (§VI-B): run homogeneous profiling
 * simulations on a set of small test matrices and search the
 * visible-latency-per-byte (vis_lat) of each worker type so that the
 * analytical model matches the measured runtimes.  The result is cached
 * per architecture name for the process lifetime — the paper's
 * "tuning ... only needs to be done once when the framework is first
 * installed on a particular machine".
 */

#include "arch/arch_config.hpp"

namespace hottiles {

/** Calibration outcome for one architecture. */
struct ArchCalibration
{
    double hot_vis_lat = 0;
    double cold_vis_lat = 0;
    double hot_error = 0;   //!< mean relative model error at the optimum
    double cold_error = 0;
};

/**
 * Calibrate @p arch in place (sets arch.hot.vis_lat / arch.cold.vis_lat)
 * and return the search outcome.  Uses three small synthetic profiling
 * matrices (uniform, power-law, mesh).  Results are memoized on
 * arch.name; pass @p force to re-run.
 */
ArchCalibration calibrateArchitecture(Architecture& arch, bool force = false);

/** Convenience: calibrated copy of a factory-made architecture. */
Architecture calibrated(Architecture arch);

} // namespace hottiles
