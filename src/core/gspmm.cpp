#include "core/gspmm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "kernels/dispatch.hpp"

namespace hottiles {

Semiring
arithmeticSemiring()
{
    Semiring s;
    s.name = "arithmetic(+,*)";
    s.identity = 0;
    s.multiply = [](Value a, Value b) { return a * b; };
    s.add = [](Value a, Value b) { return a + b; };
    s.ops_per_nnz_factor = 1.0;
    s.kind = SemiringKind::IteratedMac;
    s.mac_reps = 1;
    return s;
}

Semiring
tropicalSemiring()
{
    Semiring s;
    s.name = "tropical(min,+)";
    s.identity = std::numeric_limits<Value>::infinity();
    s.multiply = [](Value a, Value b) { return a + b; };
    s.add = [](Value a, Value b) { return std::min(a, b); };
    s.ops_per_nnz_factor = 1.0;
    return s;
}

Semiring
booleanSemiring()
{
    Semiring s;
    s.name = "boolean(or,and)";
    s.identity = 0;
    s.multiply = [](Value a, Value b) {
        return Value(a != 0 && b != 0 ? 1 : 0);
    };
    s.add = [](Value a, Value b) { return Value(a != 0 || b != 0 ? 1 : 0); };
    s.ops_per_nnz_factor = 1.0;
    return s;
}

Semiring
heavySemiring(double ai_factor)
{
    HT_ASSERT(ai_factor >= 1.0, "ai_factor must be >= 1");
    Semiring s;
    s.name = "heavy(x" + std::to_string(ai_factor) + ")";
    s.identity = 0;
    // A multiply that costs several SIMD ops: iterated multiply-add.
    int reps = std::max(1, int(std::lround(ai_factor)));
    s.multiply = [reps](Value a, Value b) {
        Value acc = 0;
        for (int i = 0; i < reps; ++i)
            acc += a * b;
        return acc / Value(reps);
    };
    s.add = [](Value a, Value b) { return a + b; };
    s.ops_per_nnz_factor = ai_factor;
    s.kind = SemiringKind::IteratedMac;
    s.mac_reps = reps;
    return s;
}

DenseMatrix
referenceGspmm(const CooMatrix& a, const DenseMatrix& din, const Semiring& s)
{
    HT_ASSERT(a.cols() == din.rows(), "gSpMM shape mismatch");
    const Index k = din.cols();

    // Row-panel parallelism: chunks aligned to row boundaries own their
    // Dout rows exclusively, and the semiring adds within a row apply
    // in the sorted serial order.
    const CooMatrix* src = &a;
    CooMatrix sorted;
    if (!a.isRowMajorSorted()) {
        sorted = a;
        sorted.sortRowMajor();
        src = &sorted;
    }
    DenseMatrix dout(a.rows(), k);
    dout.fill(s.identity);
    std::vector<size_t> bounds = rowAlignedChunkBounds(src->rowIds(),
                                                       kGrainNnz);
    if (s.kind == SemiringKind::IteratedMac) {
        // Iterated-MAC semirings run on the vectorized kernel library;
        // row-aligned chunks keep per-row accumulation order fixed.
        const kernels::CooView view{src->rowIds().data(),
                                    src->colIds().data(),
                                    src->values().data(), src->nnz()};
        kernels::gspmmAi(view, k, s.mac_reps, din.row(0), dout.row(0),
                         bounds);
        return dout;
    }
    parallelFor(0, bounds.size() - 1, 1, [&](size_t cb, size_t ce) {
        for (size_t c = cb; c < ce; ++c) {
            for (size_t i = bounds[c]; i < bounds[c + 1]; ++i) {
                const Value* in = din.row(src->colId(i));
                Value* out = dout.row(src->rowId(i));
                const Value v = src->value(i);
                for (Index j = 0; j < k; ++j)
                    out[j] = s.add(out[j], s.multiply(v, in[j]));
            }
        }
    });
    return dout;
}

KernelConfig
kernelFor(const Semiring& s, uint32_t k)
{
    KernelConfig kc;
    kc.k = k;
    kc.ai_factor = s.ops_per_nnz_factor;
    return kc;
}

} // namespace hottiles
