#pragma once

/**
 * @file
 * Out-of-core preprocessing planner (docs/OUTOFCORE.md): runs the
 * matrix scan, the per-tile model and the heuristic partitioning over a
 * PanelSource one panel window at a time, retaining only the O(tiles)
 * tile directory and estimates — never the O(nnz) tiled arrays.  Peak
 * RSS is O(panel window), and the resulting directory, estimates and
 * partition are bit-identical to the in-memory pipeline
 * (HotTiles / hotTilesPartition) on the same matrix, across thread
 * counts.
 *
 * This is the plan-only half of the out-of-core story: it answers
 * "which tiles go hot, and what will it cost" without materializing
 * formats.  To also execute, construct HotTiles from a MappedMatrix —
 * the input stays memory-mapped, only the preprocessed state is
 * resident.
 */

#include <functional>
#include <vector>

#include "arch/arch_config.hpp"
#include "core/preprocess.hpp"
#include "model/roofline.hpp"
#include "partition/partition.hpp"
#include "sparse/panel_stream.hpp"
#include "sparse/tiling.hpp"

namespace hottiles {

/** Options of a streamed (plan-only) preprocessing run. */
struct StreamedPlanOptions
{
    KernelConfig kernel;  //!< K and gSpMM arithmetic intensity

    /**
     * Row panels resident per streaming window.  Larger windows give
     * the thread pool more parallel panels per acquire/release round
     * trip at the cost of a bigger scratch high-water mark; the result
     * is bit-identical either way.  0 picks a default.
     */
    Index window_panels = 0;

    /** Same contract as HotTilesOptions::progress ("scan", "model",
     *  "partition"); a throw abandons the plan. */
    std::function<void(const char* stage)> progress;
};

/** What the streamed pipeline retains: directory, model, partition. */
struct StreamedPlan
{
    Index rows = 0;
    Index cols = 0;
    size_t nnz = 0;
    Index tile_h = 0;
    Index tile_w = 0;
    Index num_panels = 0;
    Index num_tcols = 0;

    /** Tile directory in (panel, tcol) order — byte-identical to
     *  TileGrid::tiles() on the same matrix. */
    std::vector<Tile> tiles;
    /** First tile of each panel (size num_panels + 1). */
    std::vector<size_t> panel_begin;
    /** Per-tile model estimates, bit-identical to estimateTiles(). */
    std::vector<TileEstimate> estimates;
    /** The winning partition, bit-identical to hotTilesPartition()
     *  including predicted_cycles. */
    Partition partition;
    /** scan/model/partition wall-clock (format stages stay 0). */
    PreprocessTiming timing;
};

/**
 * Run scan + model + partition over @p src panel-by-panel.  @p src must
 * satisfy the PanelSource contract (globally row-major sorted, deduped,
 * in-range); violations from untrusted files throw FatalError.  The
 * architecture must be calibrated with both worker counts nonzero.
 */
StreamedPlan streamedPlan(const Architecture& arch, const PanelSource& src,
                          const StreamedPlanOptions& opts = {});

} // namespace hottiles
