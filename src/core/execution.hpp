#pragma once

/**
 * @file
 * Execution strategies of the evaluation (§VIII-A): homogeneous HotOnly
 * and ColdOnly, the manually-selected BestHomogeneous, the IMH-unaware
 * heterogeneous baseline, and heterogeneous execution with HotTiles.
 * evaluateMatrix() runs them all on one matrix and collects both the
 * simulated statistics and the model predictions, which is what every
 * figure/table bench consumes.
 */

#include <string>

#include "core/hottiles.hpp"
#include "core/telemetry.hpp"
#include "sim/simulator.hpp"

namespace hottiles {

class TraceSink;

/** The five execution strategies compared in the paper. */
enum class Strategy
{
    HotOnly,
    ColdOnly,
    BestHomogeneous,
    IUnaware,
    HotTiles,
};

/** Display name ("HotOnly", ...). */
const char* strategyName(Strategy s);

/** One strategy's simulated and predicted outcome. */
struct StrategyOutcome
{
    Strategy strategy = Strategy::HotOnly;
    SimStats stats;                //!< simulated execution
    double predicted_cycles = 0;   //!< model prediction (0 if n/a)
    Partition partition;           //!< empty for homogeneous strategies

    double cycles() const { return double(stats.cycles); }
    double ms() const { return stats.ms; }
};

/** All strategies evaluated on one matrix. */
struct MatrixEvaluation
{
    std::string matrix;
    StrategyOutcome hot_only;
    StrategyOutcome cold_only;
    StrategyOutcome iunaware;
    StrategyOutcome hottiles;
    PreprocessTiming preprocess;

    double
    bestHomogeneousCycles() const
    {
        return std::min(hot_only.cycles(), cold_only.cycles());
    }
    double
    worstHomogeneousCycles() const
    {
        return std::max(hot_only.cycles(), cold_only.cycles());
    }
    /** Speedup of @p outcome over the worst homogeneous run (Fig 10/11). */
    double
    speedupOverWorst(const StrategyOutcome& o) const
    {
        return worstHomogeneousCycles() / o.cycles();
    }
};

/**
 * Observability hooks of one evaluateMatrix run.  All optional; the
 * defaults keep the evaluation unobserved (and its results are
 * bit-identical either way — see docs/OBSERVABILITY.md).
 */
struct EvalObservability
{
    /** Shared trace sink; every strategy's sources arrive prefixed
     *  `<Strategy>/` so the four concurrent simulations stay
     *  separable.  The sink must be thread-safe (both shipped sinks
     *  are). */
    TraceSink* trace = nullptr;

    /** Collect per-unit prediction error for the HotTiles strategy and
     *  record it into the global metrics registry under
     *  `prediction_error.HotTiles.*`.  No-op on fault-injected runs
     *  (migration re-dispatches would double-charge units). */
    bool collect_prediction_error = false;
    /** Also copy the raw telemetry here when non-null. */
    PredictionErrorTelemetry* prediction = nullptr;
};

/**
 * Run every strategy on @p a under @p arch (must be calibrated).
 * Preprocessing (tiling, model, partitioning) happens once and is
 * shared; each strategy is then simulated.
 *
 * @param faults  optional fault-injection plan applied to every
 *                strategy simulation (see sim/fault_injector.hpp); the
 *                predicted cycles stay fault-free, so the evaluation
 *                reports predicted-vs-achieved under faults.
 * @param obs     optional observability hooks (trace sink, prediction-
 *                error telemetry).
 */
MatrixEvaluation evaluateMatrix(const Architecture& arch, const CooMatrix& a,
                                const std::string& name,
                                const HotTilesOptions& opts = {},
                                const FaultPlan* faults = nullptr,
                                const EvalObservability& obs = {});

/**
 * Simulate an explicit partition on a prepared HotTiles pipeline.
 * @p scfg forwards simulation options (trace, fault plan, ...);
 * compute_values stays off — only the stats are kept.
 * @p raw, when non-null, receives the full SimOutput (bandwidth
 * samples, unit spans) beyond the stats embedded in the outcome.
 */
StrategyOutcome simulatePartition(const HotTiles& ht, const Partition& p,
                                  Strategy tag, const SimConfig& scfg = {},
                                  SimOutput* raw = nullptr);

} // namespace hottiles
