#pragma once

/**
 * @file
 * The HotTiles framework front end (Fig 7): given an architecture and a
 * sparse matrix, it tiles the matrix (matrix scan), evaluates the
 * IMH-aware performance model per tile, runs the partitioning
 * heuristics, and prepares the per-worker-type sparse formats — all
 * instrumented for the Fig 18 preprocessing-cost breakdown.  This is
 * the primary public API of the library.
 */

#include <functional>
#include <memory>

#include "arch/arch_config.hpp"
#include "core/preprocess.hpp"
#include "partition/heuristics.hpp"
#include "partition/iunaware.hpp"
#include "sim/worklist.hpp"
#include "sparse/coo.hpp"
#include "sparse/tiling.hpp"

namespace hottiles {

struct ValueUpdateBatch;
class MappedMatrix;

/** What one HotTiles::applyDelta call did (docs/INCREMENTAL.md). */
struct DeltaUpdateStats
{
    size_t inserts = 0;
    size_t deletes = 0;
    size_t dirty_panels = 0;   //!< row panels the batch touched
    size_t dirty_tiles = 0;    //!< tiles re-evaluated under the model
    /** Clean-panel tiles whose hot/cold class flipped (tile migration);
     *  dirty-panel tiles are rebuilt regardless and not counted here. */
    size_t migrated_tiles = 0;
    size_t panels_reused = 0;   //!< cold-format panels moved over as-is
    size_t panels_rebuilt = 0;  //!< cold-format panels rebuilt
    /** A clean tile changed class or the winning heuristic changed. */
    bool partition_changed = false;
    double update_s = 0;  //!< wall-clock cost of this update
};

/** Options of a HotTiles pipeline run. */
struct HotTilesOptions
{
    KernelConfig kernel;          //!< K and gSpMM arithmetic intensity
    bool build_formats = true;    //!< generate the worker formats eagerly
    uint64_t iunaware_seed = 42;  //!< tile randomization of the baseline

    /**
     * Invoked before each pipeline stage with its name ("scan",
     * "model", "partition", "format", and "update" for incremental
     * applyDelta calls).  A caller may throw from the
     * hook to abandon a build mid-pipeline — the serving layer uses
     * this to cancel builds whose deadline already passed
     * (docs/SERVING.md); the exception propagates out of the
     * constructor.  Leave empty for unconditional builds.
     */
    std::function<void(const char* stage)> progress;
};

/**
 * One preprocessed matrix, ready for heterogeneous execution.
 *
 * Construction performs the full preprocessing pipeline.  The
 * architecture is expected to be calibrated (see core/calibrate.hpp);
 * worker counts of both types must be nonzero.
 */
class HotTiles
{
  public:
    HotTiles(const Architecture& arch, const CooMatrix& a,
             const HotTilesOptions& opts = {});

    /**
     * Preprocess a memory-mapped `.htb` matrix (docs/OUTOFCORE.md): the
     * input is tiled straight from the mapping through TileGrid's
     * zero-copy span constructor — no CooMatrix copy is ever
     * materialized, so peak RSS excludes the O(nnz) input arrays.  The
     * resulting state is bit-identical (samePreprocessedState) to
     * constructing from the equivalent in-memory CooMatrix.
     * @throws FatalError when the mapped data is malformed.
     */
    HotTiles(const Architecture& arch, const MappedMatrix& m,
             const HotTilesOptions& opts = {});

    const Architecture& arch() const { return arch_; }
    const KernelConfig& kernel() const { return opts_.kernel; }
    const TileGrid& grid() const { return *grid_; }
    const PartitionContext& context() const { return ctx_; }

    /** The selected HotTiles partitioning (best of the heuristics). */
    const Partition& partition() const { return partition_; }

    /** All heuristic candidates (Fig 12 comparison). */
    std::vector<Partition> allHeuristics() const;

    /** The IMH-unaware baseline partitioning (§III-B). */
    Partition iunaware(uint64_t seed) const;
    Partition iunaware() const { return iunaware(opts_.iunaware_seed); }

    /**
     * The graceful-degradation fallback (§VI): every tile on the @p hot
     * or cold workers.  Used when an entire worker class is lost before
     * launch; the fault-tolerant executor applies the same policy
     * on-line when a class dies mid-run.
     */
    Partition degradedPartition(bool hot) const;

    /** Model-predicted homogeneous runtimes (used by Fig 17). */
    double predictedHotOnlyCycles() const;
    double predictedColdOnlyCycles() const;

    /** Per-worker-type formats for the selected partitioning. */
    const UntiledWork& coldFormat() const;
    const TiledWork& hotFormat() const;

    /** Preprocessing stage timings (Fig 18). */
    const PreprocessTiming& timing() const { return timing_; }

    /**
     * Patch this preprocessed matrix with one DeltaBatch instead of
     * re-running the pipeline from scratch: the tiling layer re-tiles
     * only the dirty row panels, the per-tile model re-evaluates only
     * their tiles (clean panels' estimates are spliced over), the
     * heuristic sweep re-runs on the spliced estimates — it is global
     * by construction, but O(tiles log tiles), not O(nnz) — and the
     * cold format reuses every panel whose data and cold membership did
     * not move.  The resulting grid, partition and formats are
     * bit-identical to constructing HotTiles(arch, applyDeltaToCoo(a,
     * d), opts) across thread counts.  The "update" progress hook fires
     * once per call; the cost lands in timing().update_s.
     * @throws FatalError on a batch-contract violation (delta.hpp),
     * leaving the object unmodified.
     */
    DeltaUpdateStats applyDelta(const DeltaBatch& d);

    /**
     * Value-only fast path: overwrite the values of @p u's coordinates
     * in the tiled arrays and, when formats were built, in the cold
     * format's copied panel values — nothing else.  Values affect no
     * tile statistic, model estimate, partition decision or fingerprint,
     * so this skips every pipeline stage (including stage 1'-3' of
     * applyDelta) and costs O(|u| log nnz).  The result is bit-identical
     * to a from-scratch build of the value-updated matrix
     * (applyValueUpdatesToCoo).  Every coordinate is validated before
     * anything is written: on FatalError (an entry names an empty
     * coordinate) the object is unmodified.  Returns the entry count.
     */
    size_t patchValues(const ValueUpdateBatch& u);

  private:
    /** Shared pipeline body: stage 1 builds the grid via @p make_grid
     *  (in-memory sort-and-tile, or zero-copy from a mapping), stages
     *  2-4 are identical for both constructors. */
    void buildPipeline(
        const std::function<std::unique_ptr<TileGrid>()>& make_grid);

    Architecture arch_;
    HotTilesOptions opts_;
    std::unique_ptr<TileGrid> grid_;
    PartitionContext ctx_;
    Partition partition_;
    UntiledWork cold_format_;
    TiledWork hot_format_;
    bool formats_built_ = false;
    PreprocessTiming timing_;
    /** Per-heuristic sweep state for incremental re-partitioning; empty
     *  (no memory cost) until the first applyDelta seeds it. */
    PartitionSweepCache sweep_cache_;
    /** Retired estimates buffer recycled by the next applyDelta. */
    std::vector<TileEstimate> est_scratch_;
};

/**
 * Bit-exact equality of two preprocessed states: grid (tiles + tiled
 * arrays), partition and both worker formats.  This is the acceptance
 * contract of the incremental path (docs/INCREMENTAL.md) — anything
 * short of bit-identity would let update streams drift from what a
 * from-scratch preprocessing would produce.  Both objects must have
 * been built with formats enabled.
 */
bool samePreprocessedState(const HotTiles& a, const HotTiles& b);

} // namespace hottiles
