#pragma once

/**
 * @file
 * Preprocessing-cost instrumentation (§VIII-C / Fig 18).  The HotTiles
 * pipeline times its stages on the host: matrix scan (tiling + tile
 * statistics), model evaluation, partitioning, and sparse-format
 * creation for each worker type.  Format creation for ONE worker type
 * is the cost any homogeneous accelerator pays; everything else is the
 * "Hot Tiles Overhead" the paper reports.
 */

#include <cstdint>

namespace hottiles {

/** Wall-clock seconds of each preprocessing stage. */
struct PreprocessTiming
{
    double scan_s = 0;          //!< tiling + per-tile statistics
    double model_s = 0;         //!< per-tile model evaluation
    double partition_s = 0;     //!< heuristic partitioning
    double format_base_s = 0;   //!< formats for one worker type
    double format_extra_s = 0;  //!< formats for the additional type

    /** Total preprocessing time. */
    double
    total() const
    {
        return scan_s + model_s + partition_s + format_base_s +
               format_extra_s;
    }

    /** The HotTiles-specific portion (everything but the base format). */
    double
    hotTilesOverhead() const
    {
        return scan_s + model_s + partition_s + format_extra_s;
    }

    /** HotTiles overhead as a fraction of the total (Fig 18 bars). */
    double
    overheadFraction() const
    {
        double t = total();
        return t > 0 ? hotTilesOverhead() / t : 0.0;
    }
};

/** Monotonic wall-clock seconds (helper for the pipeline stages). */
double monotonicSeconds();

} // namespace hottiles
