#pragma once

/**
 * @file
 * Preprocessing-cost instrumentation (§VIII-C / Fig 18).  The HotTiles
 * pipeline times its stages on the host: matrix scan (tiling + tile
 * statistics), model evaluation, partitioning, and sparse-format
 * creation for each worker type.  Format creation for ONE worker type
 * is the cost any homogeneous accelerator pays; everything else is the
 * "Hot Tiles Overhead" the paper reports.
 */

#include <cstdint>
#include <vector>

namespace hottiles {

/** One named preprocessing stage and its accumulated wall-clock time. */
struct PreprocessStage
{
    const char* name;
    double seconds;
};

/** Wall-clock seconds of each preprocessing stage. */
struct PreprocessTiming
{
    double scan_s = 0;          //!< tiling + per-tile statistics
    double model_s = 0;         //!< per-tile model evaluation
    double partition_s = 0;     //!< heuristic partitioning
    double format_base_s = 0;   //!< formats for one worker type
    double format_extra_s = 0;  //!< formats for the additional type
    double update_s = 0;        //!< incremental delta updates (applyDelta)

    /**
     * Every stage as a name/seconds pair.  Reporting code (the Fig 18
     * table) must iterate this rather than hard-code the field list, so
     * a stage added later is surfaced instead of silently dropped.
     */
    std::vector<PreprocessStage>
    stages() const
    {
        return {{"scan", scan_s},
                {"model", model_s},
                {"partition", partition_s},
                {"format_base", format_base_s},
                {"format_extra", format_extra_s},
                {"update", update_s}};
    }

    /** Total preprocessing time (sum over stages()). */
    double
    total() const
    {
        double t = 0;
        for (const PreprocessStage& s : stages())
            t += s.seconds;
        return t;
    }

    /** The HotTiles-specific portion (everything but the base format). */
    double
    hotTilesOverhead() const
    {
        return total() - format_base_s;
    }

    /** HotTiles overhead as a fraction of the total (Fig 18 bars). */
    double
    overheadFraction() const
    {
        double t = total();
        return t > 0 ? hotTilesOverhead() / t : 0.0;
    }
};

/** Monotonic wall-clock seconds (helper for the pipeline stages). */
double monotonicSeconds();

} // namespace hottiles
