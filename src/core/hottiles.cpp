#include "core/hottiles.hpp"

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "partition/predicted_runtime.hpp"
#include "sim/merger.hpp"

namespace hottiles {

HotTiles::HotTiles(const Architecture& arch, const CooMatrix& a,
                   const HotTilesOptions& opts)
    : arch_(arch), opts_(opts)
{
    HT_ASSERT(arch_.hot.count > 0 && arch_.cold.count > 0,
              "HotTiles needs both worker types; use simulateHomogeneous "
              "for single-type architectures");

    auto progress = [&](const char* stage) {
        if (opts_.progress)
            opts_.progress(stage);
    };

    // Stage 1: matrix scan — tiling and per-tile statistics (Fig 7).
    progress("scan");
    double t0 = monotonicSeconds();
    grid_ = std::make_unique<TileGrid>(a, arch_.tile_height,
                                       arch_.tile_width);
    double t1 = monotonicSeconds();
    timing_.scan_s = t1 - t0;

    // Stage 2: per-tile performance model for both worker types.
    // SDDMM outputs are disjoint per nonzero, so no Merger is needed.
    progress("model");
    bool no_merge =
        arch_.atomic_rmw || opts_.kernel.kind == SparseKernel::Sddmm;
    double t_merge = no_merge
                         ? 0.0
                         : mergeCycles(grid_->matrixRows(), opts_.kernel.k,
                                       arch_.cold.value_bytes,
                                       arch_.bwBytesPerCycle(),
                                       arch_.line_bytes);
    double hot_bw = arch_.pcie_gbps > 0
                        ? arch_.pcie_gbps / arch_.freq_ghz
                        : arch_.bwBytesPerCycle();
    // `no_merge` doubles as the context's race-free flag: with no merge
    // cost, serial operation never pays off under the model (§V-B), so
    // only the Parallel heuristics are considered.
    ctx_ = makePartitionContext(*grid_, arch_.hot, arch_.cold, opts_.kernel,
                                arch_.bwBytesPerCycle(), t_merge, no_merge,
                                hot_bw);
    double t2 = monotonicSeconds();
    timing_.model_s = t2 - t1;

    // Stage 3: heuristic partitioning.
    progress("partition");
    partition_ = hotTilesPartition(ctx_);
    double t3 = monotonicSeconds();
    timing_.partition_s = t3 - t2;

    // Stage 4: sparse format creation.  The cold (base) format is what a
    // homogeneous accelerator would need anyway; the hot format is the
    // additional HotTiles cost (§VIII-C).
    if (opts_.build_formats) {
        progress("format");
        cold_format_ = buildUntiledWork(*grid_, partition_.coldTiles());
        double t4 = monotonicSeconds();
        timing_.format_base_s = t4 - t3;
        hot_format_ = buildTiledWork(*grid_, partition_.hotTiles());
        timing_.format_extra_s = monotonicSeconds() - t4;
        formats_built_ = true;
    }

    // Mirror the Fig 18 stage breakdown into the metrics registry so
    // `--metrics` reports phase timings without a bench harness.
    MetricsRegistry& reg = MetricsRegistry::global();
    reg.timer("preprocess.scan").observe(timing_.scan_s);
    reg.timer("preprocess.model").observe(timing_.model_s);
    reg.timer("preprocess.partition").observe(timing_.partition_s);
    if (opts_.build_formats) {
        reg.timer("preprocess.format_base").observe(timing_.format_base_s);
        reg.timer("preprocess.format_extra").observe(timing_.format_extra_s);
    }
}

std::vector<Partition>
HotTiles::allHeuristics() const
{
    return allHeuristicPartitions(ctx_);
}

Partition
HotTiles::iunaware(uint64_t seed) const
{
    return iunawarePartition(ctx_, seed);
}

Partition
HotTiles::degradedPartition(bool hot) const
{
    return homogeneousPartition(ctx_, hot);
}

double
HotTiles::predictedHotOnlyCycles() const
{
    return predictedHomogeneousCycles(ctx_, /*hot=*/true);
}

double
HotTiles::predictedColdOnlyCycles() const
{
    return predictedHomogeneousCycles(ctx_, /*hot=*/false);
}

const UntiledWork&
HotTiles::coldFormat() const
{
    HT_ASSERT(formats_built_, "formats were not built; set build_formats");
    return cold_format_;
}

const TiledWork&
HotTiles::hotFormat() const
{
    HT_ASSERT(formats_built_, "formats were not built; set build_formats");
    return hot_format_;
}

} // namespace hottiles
