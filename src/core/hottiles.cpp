#include "core/hottiles.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/rss.hpp"
#include "common/thread_pool.hpp"
#include "partition/predicted_runtime.hpp"
#include "sim/merger.hpp"
#include "sparse/delta.hpp"
#include "sparse/htb.hpp"

namespace hottiles {

HotTiles::HotTiles(const Architecture& arch, const CooMatrix& a,
                   const HotTilesOptions& opts)
    : arch_(arch), opts_(opts)
{
    buildPipeline([&] {
        return std::make_unique<TileGrid>(a, arch_.tile_height,
                                          arch_.tile_width);
    });
}

HotTiles::HotTiles(const Architecture& arch, const MappedMatrix& m,
                   const HotTilesOptions& opts)
    : arch_(arch), opts_(opts)
{
    buildPipeline([&] {
        // Zero-copy: the spans alias the mapping for the whole tiling
        // pass; the grid owns only the tiled output arrays.
        return std::make_unique<TileGrid>(m.rows(), m.cols(), m.rowIds(),
                                          m.colIds(), m.vals(),
                                          arch_.tile_height,
                                          arch_.tile_width);
    });
}

void
HotTiles::buildPipeline(
    const std::function<std::unique_ptr<TileGrid>()>& make_grid)
{
    HT_ASSERT(arch_.hot.count > 0 && arch_.cold.count > 0,
              "HotTiles needs both worker types; use simulateHomogeneous "
              "for single-type architectures");

    auto progress = [&](const char* stage) {
        if (opts_.progress)
            opts_.progress(stage);
    };

    // Stage 1: matrix scan — tiling and per-tile statistics (Fig 7).
    progress("scan");
    double t0 = monotonicSeconds();
    grid_ = make_grid();
    double t1 = monotonicSeconds();
    timing_.scan_s = t1 - t0;
    recordPeakRss();

    // Stage 2: per-tile performance model for both worker types.
    // SDDMM outputs are disjoint per nonzero, so no Merger is needed.
    progress("model");
    bool no_merge =
        arch_.atomic_rmw || opts_.kernel.kind == SparseKernel::Sddmm;
    double t_merge = no_merge
                         ? 0.0
                         : mergeCycles(grid_->matrixRows(), opts_.kernel.k,
                                       arch_.cold.value_bytes,
                                       arch_.bwBytesPerCycle(),
                                       arch_.line_bytes);
    double hot_bw = arch_.pcie_gbps > 0
                        ? arch_.pcie_gbps / arch_.freq_ghz
                        : arch_.bwBytesPerCycle();
    // `no_merge` doubles as the context's race-free flag: with no merge
    // cost, serial operation never pays off under the model (§V-B), so
    // only the Parallel heuristics are considered.
    ctx_ = makePartitionContext(*grid_, arch_.hot, arch_.cold, opts_.kernel,
                                arch_.bwBytesPerCycle(), t_merge, no_merge,
                                hot_bw);
    double t2 = monotonicSeconds();
    timing_.model_s = t2 - t1;
    recordPeakRss();

    // Stage 3: heuristic partitioning.
    progress("partition");
    partition_ = hotTilesPartition(ctx_);
    double t3 = monotonicSeconds();
    timing_.partition_s = t3 - t2;
    recordPeakRss();

    // Stage 4: sparse format creation.  The cold (base) format is what a
    // homogeneous accelerator would need anyway; the hot format is the
    // additional HotTiles cost (§VIII-C).
    if (opts_.build_formats) {
        progress("format");
        cold_format_ = buildUntiledWork(*grid_, partition_.coldTiles());
        double t4 = monotonicSeconds();
        timing_.format_base_s = t4 - t3;
        hot_format_ = buildTiledWork(*grid_, partition_.hotTiles());
        timing_.format_extra_s = monotonicSeconds() - t4;
        formats_built_ = true;
        recordPeakRss();
    }

    // Mirror the Fig 18 stage breakdown into the metrics registry so
    // `--metrics` reports phase timings without a bench harness.
    MetricsRegistry& reg = MetricsRegistry::global();
    reg.timer("preprocess.scan").observe(timing_.scan_s);
    reg.timer("preprocess.model").observe(timing_.model_s);
    reg.timer("preprocess.partition").observe(timing_.partition_s);
    if (opts_.build_formats) {
        reg.timer("preprocess.format_base").observe(timing_.format_base_s);
        reg.timer("preprocess.format_extra").observe(timing_.format_extra_s);
    }
}

DeltaUpdateStats
HotTiles::applyDelta(const DeltaBatch& d)
{
    const double t0 = monotonicSeconds();
    if (opts_.progress)
        opts_.progress("update");

    DeltaUpdateStats st;
    st.inserts = d.inserts();
    st.deletes = d.deletes();

    // Stage 1': re-tile the dirty row panels only.  Throws before any
    // mutation on a contract breach, so `*this` stays valid.
    TileGridDelta gd = [&] {
        ScopedTimer t("preprocess.update_tiling");
        return grid_->applyDelta(d);
    }();
    st.dirty_panels = gd.dirty_panels.size();
    if (gd.empty()) {
        st.update_s = monotonicSeconds() - t0;
        timing_.update_s += st.update_s;
        return st;
    }

    // Stage 2': splice the per-tile estimates.  The model is a pure
    // function of tile statistics — never storage offsets — so clean
    // panels' entries are copied over bit-identically and only dirty
    // panels' tiles are re-evaluated.
    ScopedTimer model_timer("preprocess.update_model");
    const size_t np = grid_->numPanels();
    std::vector<TileEstimate> old_est = std::move(ctx_.estimates);
    std::vector<TileEstimate> est = std::move(est_scratch_);
    est.resize(grid_->numTiles());
    std::vector<size_t> dirty_count(np, 0);
    parallelFor(0, np, kGrainPanels, [&](size_t pb, size_t pe) {
        for (size_t p = pb; p < pe; ++p) {
            auto [nb, ne] = grid_->panelTiles(Index(p));
            if (!gd.panelDirty(Index(p))) {
                const size_t ob = gd.old_panel_begin[p];
                HT_ASSERT(gd.old_panel_begin[p + 1] - ob == ne - nb,
                          "clean panel changed tile count");
                std::copy_n(old_est.data() + ob, ne - nb, est.data() + nb);
            } else {
                for (size_t i = nb; i < ne; ++i)
                    est[i] = estimateTile(grid_->tile(i), *ctx_.hot,
                                          *ctx_.cold, ctx_.kernel);
                dirty_count[p] = ne - nb;
            }
        }
    });
    ctx_.estimates = std::move(est);
    est_scratch_ = std::move(old_est);
    for (size_t p = 0; p < np; ++p)
        st.dirty_tiles += dirty_count[p];
    model_timer.stop();

    // Stage 3': incremental re-partitioning.  The first update seeds
    // the per-heuristic sweep cache (full cost, same arithmetic as a
    // fresh hotTilesPartition); every later update merges the dirty
    // tiles into each cached sorted order, re-sweeps, and re-scores
    // only the panels whose data or membership pattern moved — the
    // dominant preprocessing stage drops from O(nnz) per heuristic to
    // O(dirty + tiles).
    Partition old_part = std::move(partition_);
    if (!sweep_cache_.seeded())
        partition_ = hotTilesPartition(ctx_, &sweep_cache_);
    else
        partition_ = hotTilesPartitionDelta(ctx_, gd, sweep_cache_);

    // Migration accounting: on a clean panel, old tile j and new tile j
    // are the same tile, so a flipped class bit is a migrated tile.
    ScopedTimer migrate_timer("preprocess.update_migrate");
    std::vector<uint8_t> panel_class_same(np, 0);
    for (size_t p = 0; p < np; ++p) {
        if (gd.panelDirty(Index(p)))
            continue;
        auto [nb, ne] = grid_->panelTiles(Index(p));
        const size_t ob = gd.old_panel_begin[p];
        size_t flips = 0;
        for (size_t j = 0; j < ne - nb; ++j)
            flips += old_part.is_hot[ob + j] != partition_.is_hot[nb + j];
        st.migrated_tiles += flips;
        panel_class_same[p] = flips == 0;
    }
    st.partition_changed = st.migrated_tiles > 0 ||
                           partition_.heuristic != old_part.heuristic;
    migrate_timer.stop();

    // Stage 4': patch the formats.  The hot (tiled) format is a cheap
    // O(#hot tiles) grouping and is rebuilt outright.  The cold
    // (untiled) format reuses each panel's PanelWork when the panel's
    // data and its cold membership both stayed put — the per-panel
    // equivalent of PR 3's SegmentBuildCache, applied across a grid
    // mutation — and rebuilds the rest with one buildUntiledWork call.
    if (formats_built_) {
        ScopedTimer fmt_timer("preprocess.update_formats");
        hot_format_ = buildTiledWork(*grid_, partition_.hotTiles());

        std::vector<size_t> cold_ids = partition_.coldTiles();
        struct Group
        {
            Index panel;
            size_t first, last;
            bool reuse;
        };
        std::vector<Group> groups;
        size_t i = 0;
        while (i < cold_ids.size()) {
            const Index p = grid_->tile(cold_ids[i]).panel;
            size_t j = i;
            while (j < cold_ids.size() &&
                   grid_->tile(cold_ids[j]).panel == p)
                ++j;
            groups.push_back(
                {p, i, j, !gd.panelDirty(p) && panel_class_same[p] != 0});
            i = j;
        }
        std::vector<size_t> rebuild_ids;
        for (const Group& g : groups)
            if (!g.reuse)
                rebuild_ids.insert(rebuild_ids.end(),
                                   cold_ids.begin() + g.first,
                                   cold_ids.begin() + g.last);
        UntiledWork fresh = buildUntiledWork(*grid_, rebuild_ids);

        std::vector<int64_t> old_of_panel(np, -1);
        for (size_t k = 0; k < cold_format_.panels.size(); ++k)
            old_of_panel[cold_format_.panels[k].panel] = int64_t(k);

        UntiledWork nf;
        nf.panels.reserve(groups.size());
        size_t fi = 0;
        for (const Group& g : groups) {
            if (g.reuse) {
                HT_ASSERT(old_of_panel[g.panel] >= 0,
                          "reusable panel missing from the old cold format");
                nf.panels.push_back(std::move(
                    cold_format_.panels[size_t(old_of_panel[g.panel])]));
                ++st.panels_reused;
            } else {
                nf.panels.push_back(std::move(fresh.panels[fi++]));
                ++st.panels_rebuilt;
            }
        }
        HT_ASSERT(fi == fresh.panels.size(), "cold-format splice mismatch");
        for (const PanelWork& pw : nf.panels)
            nf.total_nnz += pw.rows.size();
        cold_format_ = std::move(nf);
    }

    st.update_s = monotonicSeconds() - t0;
    timing_.update_s += st.update_s;

    MetricsRegistry& reg = MetricsRegistry::global();
    reg.timer("preprocess.update").observe(st.update_s);
    reg.counter("preprocess.update.inserts").add(st.inserts);
    reg.counter("preprocess.update.deletes").add(st.deletes);
    reg.counter("preprocess.update.dirty_tiles").add(st.dirty_tiles);
    reg.counter("preprocess.update.migrated_tiles").add(st.migrated_tiles);
    reg.counter("preprocess.update.panels_reused").add(st.panels_reused);
    reg.counter("preprocess.update.panels_rebuilt").add(st.panels_rebuilt);
    return st;
}

std::vector<Partition>
HotTiles::allHeuristics() const
{
    return allHeuristicPartitions(ctx_);
}

Partition
HotTiles::iunaware(uint64_t seed) const
{
    return iunawarePartition(ctx_, seed);
}

Partition
HotTiles::degradedPartition(bool hot) const
{
    return homogeneousPartition(ctx_, hot);
}

double
HotTiles::predictedHotOnlyCycles() const
{
    return predictedHomogeneousCycles(ctx_, /*hot=*/true);
}

double
HotTiles::predictedColdOnlyCycles() const
{
    return predictedHomogeneousCycles(ctx_, /*hot=*/false);
}

size_t
HotTiles::patchValues(const ValueUpdateBatch& u)
{
    // Phase 1: resolve every coordinate (grid position + owning tile)
    // up front so a bad entry throws before anything was written.
    std::vector<size_t> pos(u.size()), tile(u.size());
    for (size_t i = 0; i < u.size(); ++i) {
        pos[i] = grid_->findNonzero(u.rows[i], u.cols[i], &tile[i]);
        HT_FATAL_IF(pos[i] == SIZE_MAX, "value update at empty coordinate (",
                    u.rows[i], ",", u.cols[i],
                    "); structural changes are delta inserts");
    }

    // Phase 2: write.  The hot (tiled) format references the grid's
    // value arrays through tile ids, so patching the grid covers it;
    // the cold (untiled) format copies its values per panel and needs
    // the matching PanelWork entry patched too.
    for (size_t i = 0; i < u.size(); ++i) {
        grid_->setTiledValue(pos[i], u.vals[i]);
        if (!formats_built_ || partition_.is_hot[tile[i]])
            continue;
        const Index panel = grid_->tile(tile[i]).panel;
        auto& panels = cold_format_.panels;
        auto pit = std::lower_bound(
            panels.begin(), panels.end(), panel,
            [](const PanelWork& w, Index p) { return w.panel < p; });
        HT_ASSERT(pit != panels.end() && pit->panel == panel,
                  "cold tile's panel missing from the cold format");
        // Panel nonzeros are row-major sorted (buildUntiledWork).
        const Index r = u.rows[i], c = u.cols[i];
        size_t lo = 0, hi = pit->rows.size();
        while (lo < hi) {
            size_t mid = lo + (hi - lo) / 2;
            if (pit->rows[mid] < r ||
                (pit->rows[mid] == r && pit->cols[mid] < c))
                lo = mid + 1;
            else
                hi = mid;
        }
        HT_ASSERT(lo < pit->rows.size() && pit->rows[lo] == r &&
                      pit->cols[lo] == c,
                  "cold nonzero missing from its PanelWork");
        pit->vals[lo] = u.vals[i];
    }
    MetricsRegistry::global().counter("preprocess.value_patches")
        .add(u.size());
    return u.size();
}

const UntiledWork&
HotTiles::coldFormat() const
{
    HT_ASSERT(formats_built_, "formats were not built; set build_formats");
    return cold_format_;
}

const TiledWork&
HotTiles::hotFormat() const
{
    HT_ASSERT(formats_built_, "formats were not built; set build_formats");
    return hot_format_;
}

bool
samePreprocessedState(const HotTiles& a, const HotTiles& b)
{
    const TileGrid& ga = a.grid();
    const TileGrid& gb = b.grid();
    if (ga.numTiles() != gb.numTiles() || ga.matrixNnz() != gb.matrixNnz())
        return false;
    for (size_t i = 0; i < ga.numTiles(); ++i) {
        const Tile& ta = ga.tile(i);
        const Tile& tb = gb.tile(i);
        if (std::memcmp(&ta, &tb, sizeof(Tile)) != 0)
            return false;
        auto ra = ga.tileRows(i), rb = gb.tileRows(i);
        auto ca = ga.tileCols(i), cb = gb.tileCols(i);
        auto va = ga.tileVals(i), vb = gb.tileVals(i);
        if (std::memcmp(ra.data(), rb.data(), ra.size() * sizeof(Index)) ||
            std::memcmp(ca.data(), cb.data(), ca.size() * sizeof(Index)) ||
            std::memcmp(va.data(), vb.data(), va.size() * sizeof(Value)))
            return false;
    }
    const Partition& pa = a.partition();
    const Partition& pb = b.partition();
    if (pa.is_hot != pb.is_hot || pa.serial != pb.serial ||
        pa.heuristic != pb.heuristic ||
        std::memcmp(&pa.predicted_cycles, &pb.predicted_cycles,
                    sizeof(double)) != 0)
        return false;
    const UntiledWork& ca = a.coldFormat();
    const UntiledWork& cb = b.coldFormat();
    if (ca.total_nnz != cb.total_nnz || ca.panels.size() != cb.panels.size())
        return false;
    for (size_t i = 0; i < ca.panels.size(); ++i) {
        const PanelWork& wa = ca.panels[i];
        const PanelWork& wb = cb.panels[i];
        if (wa.panel != wb.panel || wa.rows != wb.rows ||
            wa.cols != wb.cols ||
            std::memcmp(wa.vals.data(), wb.vals.data(),
                        wa.vals.size() * sizeof(Value)) != 0)
            return false;
    }
    const TiledWork& ha = a.hotFormat();
    const TiledWork& hb = b.hotFormat();
    return ha.total_nnz == hb.total_nnz && ha.panel_ids == hb.panel_ids &&
           ha.panel_tiles == hb.panel_tiles;
}

} // namespace hottiles
