#pragma once

/**
 * @file
 * Smart tile sizing (§IV + §X future work).  The tile width/height are
 * bounded by the scratchpad capacities of the workers that stream Din /
 * Dout; any remaining free dimension can be searched: "the IMH-aware
 * modeling and partitioning methodology can be iteratively applied to
 * find the value that is predicted to deliver the maximum performance".
 */

#include <vector>

#include "arch/arch_config.hpp"
#include "model/worker_traits.hpp"
#include "sparse/coo.hpp"

namespace hottiles {

/** One evaluated tile-size candidate. */
struct TileSizeCandidate
{
    Index tile_height = 0;
    Index tile_width = 0;
    double predicted_cycles = 0;  //!< HotTiles prediction at this size
    size_t tiles = 0;             //!< occupied tiles in the grid
};

/** Outcome of a tile-size search. */
struct TileSizeSearchResult
{
    TileSizeCandidate best;
    std::vector<TileSizeCandidate> candidates;  //!< all evaluated sizes
};

/**
 * Largest legal tile width for @p arch at dense width @p k: bounded by
 * the hot worker's scratchpad (double-buffered Din tile) when it streams
 * Din; unbounded (returns @p free_cap) otherwise.
 */
Index maxTileWidth(const Architecture& arch, const KernelConfig& kernel,
                   Index free_cap = 4096);

/**
 * Evaluate square tile sizes from @p candidates (filtered to the legal
 * range) by running the full model + partitioning pipeline at each size
 * and comparing predicted runtimes.  @pre at least one legal candidate.
 */
TileSizeSearchResult searchTileSize(
    const Architecture& arch, const CooMatrix& a,
    const KernelConfig& kernel,
    const std::vector<Index>& candidates = {64, 128, 256, 512, 1024});

} // namespace hottiles
