#include "core/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

#include "common/error.hpp"
#include "common/metrics.hpp"

namespace hottiles {

namespace {

/** Sum span cycles per unit, preserving first-retire order of units. */
std::map<uint32_t, double>
sumSpans(const std::vector<UnitSpan>& spans)
{
    std::map<uint32_t, double> per_unit;
    for (const UnitSpan& s : spans) {
        HT_DASSERT(s.end >= s.begin, "span ends before it begins");
        per_unit[s.unit] += double(s.end - s.begin);
    }
    return per_unit;
}

PredictionErrorSample
makeSample(uint32_t unit, double predicted, double simulated)
{
    PredictionErrorSample out;
    out.unit = unit;
    out.predicted_cycles = predicted;
    out.simulated_cycles = simulated;
    out.error_pct = 100.0 * std::abs(predicted - simulated) / simulated;
    return out;
}

} // namespace

PredictionErrorTelemetry
computePredictionError(const TileGrid& grid, const PartitionContext& ctx,
                       const std::vector<uint8_t>& is_hot,
                       const SimOutput& sim)
{
    HT_ASSERT(ctx.estimates.size() == grid.numTiles(),
              "estimate/grid size mismatch");
    HT_ASSERT(is_hot.size() == grid.numTiles(),
              "assignment/grid size mismatch");
    PredictionErrorTelemetry out;

    // Hot/stream side: one segment per tile, so the span *is* the
    // tile's simulated execution time and the model's th_i maps 1:1.
    for (const auto& [tile, cycles] : sumSpans(sim.hot_spans)) {
        if (cycles <= 0.0 || tile >= ctx.estimates.size())
            continue;
        out.hot_tiles.push_back(
            makeSample(tile, ctx.estimates[tile].th, cycles));
    }

    // Cold/demand side: segments are pipelined slices of a row panel;
    // their summed spans give a latency-weighted panel time compared
    // against the summed tc_i of the panel's cold tiles (see file doc).
    for (const auto& [panel, cycles] : sumSpans(sim.cold_spans)) {
        if (cycles <= 0.0 || panel >= uint32_t(grid.numPanels()))
            continue;
        auto [first, last] = grid.panelTiles(Index(panel));
        double predicted = 0.0;
        for (size_t t = first; t < last; ++t)
            if (!is_hot[t])
                predicted += ctx.estimates[t].tc;
        if (predicted <= 0.0)
            continue;
        out.cold_panels.push_back(makeSample(panel, predicted, cycles));
    }
    return out;
}

PredictionErrorSummary
summarizePredictionError(std::vector<PredictionErrorSample> samples)
{
    PredictionErrorSummary s;
    s.count = samples.size();
    if (samples.empty())
        return s;
    std::sort(samples.begin(), samples.end(),
              [](const PredictionErrorSample& a,
                 const PredictionErrorSample& b) {
                  return a.error_pct < b.error_pct;
              });
    double sum = 0;
    for (const PredictionErrorSample& x : samples)
        sum += x.error_pct;
    s.mean_pct = sum / double(samples.size());
    s.p50_pct = samples[samples.size() / 2].error_pct;
    s.p90_pct = samples[samples.size() * 9 / 10].error_pct;
    s.max_pct = samples.back().error_pct;
    return s;
}

void
recordPredictionError(const PredictionErrorTelemetry& t,
                      std::string_view label)
{
    recordPredictionError(t, label, MetricsRegistry::global());
}

void
recordPredictionError(const PredictionErrorTelemetry& t,
                      std::string_view label, MetricsRegistry& reg)
{
    const std::string base = "prediction_error." + std::string(label);
    if (!t.hot_tiles.empty()) {
        auto& h = reg.histogram(base + ".hot_tile_pct", 0.0, 200.0, 40);
        for (const PredictionErrorSample& s : t.hot_tiles)
            h.observe(s.error_pct);
    }
    if (!t.cold_panels.empty()) {
        auto& h = reg.histogram(base + ".cold_panel_pct", 0.0, 200.0, 40);
        for (const PredictionErrorSample& s : t.cold_panels)
            h.observe(s.error_pct);
    }
}

} // namespace hottiles
