#include "core/serialize.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"
#include "common/random.hpp"
#include "common/string_util.hpp"

namespace hottiles {

uint64_t
gridFingerprint(const TileGrid& grid)
{
    // Mix the grid geometry and every tile's position/size through
    // SplitMix64 so any structural change invalidates stored partitions.
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    auto mix = [&h](uint64_t v) {
        h ^= v;
        h = splitmix64(h);
    };
    mix(grid.matrixRows());
    mix(grid.matrixCols());
    mix(grid.matrixNnz());
    mix(grid.tileHeight());
    mix(grid.tileWidth());
    for (size_t i = 0; i < grid.numTiles(); ++i) {
        const Tile& t = grid.tile(i);
        mix((uint64_t(t.panel) << 32) | t.tcol);
        mix(t.nnz);
    }
    return h;
}

void
writePartition(const PartitionFile& pf, std::ostream& os)
{
    const Partition& p = pf.partition;
    os << "hottiles-partition v1\n";
    os << "matrix " << (pf.matrix_name.empty() ? "-" : pf.matrix_name)
       << "\n";
    os << "tile " << pf.tile_height << " " << pf.tile_width << "\n";
    os << "fingerprint " << pf.grid_fingerprint << "\n";
    os << "serial " << (p.serial ? 1 : 0) << "\n";
    os << "heuristic " << (p.heuristic.empty() ? "-" : p.heuristic) << "\n";
    os << "predicted_cycles " << std::setprecision(17)
       << p.predicted_cycles << "\n";
    os << "tiles " << p.is_hot.size() << "\n";
    os << "bitmap ";
    static const char* hex = "0123456789abcdef";
    uint32_t nibble = 0;
    int bits = 0;
    for (size_t i = 0; i < p.is_hot.size(); ++i) {
        nibble = (nibble << 1) | (p.is_hot[i] ? 1u : 0u);
        if (++bits == 4) {
            os << hex[nibble];
            nibble = 0;
            bits = 0;
        }
    }
    if (bits > 0)
        os << hex[nibble << (4 - bits)];
    os << "\n";
}

namespace {

std::string
expectKey(std::istream& is, const std::string& key)
{
    std::string line;
    if (!std::getline(is, line))
        HT_FATAL("partition file: missing '", key, "' line");
    auto tok = splitWs(line);
    if (tok.empty() || tok[0] != key)
        HT_FATAL("partition file: expected '", key, "', got '", line, "'");
    std::string rest;
    for (size_t i = 1; i < tok.size(); ++i) {
        if (i > 1)
            rest += " ";
        rest += std::string(tok[i]);
    }
    return rest;
}

/** Checked integer parse: the whole token must be a uint64. */
uint64_t
parseU64(std::string_view tok, const char* what)
{
    uint64_t v = 0;
    auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
    if (ec != std::errc() || p != tok.data() + tok.size())
        HT_FATAL("partition file: bad ", what, " '", std::string(tok), "'");
    return v;
}

/** Checked double parse: whole token, finite result. */
double
parseF64(std::string_view tok, const char* what)
{
    double v = 0.0;
    auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
    if (ec != std::errc() || p != tok.data() + tok.size() ||
        !std::isfinite(v))
        HT_FATAL("partition file: bad ", what, " '", std::string(tok), "'");
    return v;
}

} // namespace

PartitionFile
readPartition(std::istream& is)
{
    std::string header;
    std::getline(is, header);
    if (trim(header) != "hottiles-partition v1")
        HT_FATAL("not a hottiles partition file (header '", header, "')");

    PartitionFile pf;
    pf.matrix_name = expectKey(is, "matrix");
    if (pf.matrix_name == "-")
        pf.matrix_name.clear();
    {
        const std::string tile = expectKey(is, "tile");
        auto tok = splitWs(tile);
        if (tok.size() != 2)
            HT_FATAL("partition file: bad tile line '", tile, "'");
        pf.tile_height = static_cast<Index>(parseU64(tok[0], "tile height"));
        pf.tile_width = static_cast<Index>(parseU64(tok[1], "tile width"));
    }
    pf.grid_fingerprint = parseU64(expectKey(is, "fingerprint"),
                                   "fingerprint");
    {
        const std::string serial = expectKey(is, "serial");
        if (serial != "0" && serial != "1")
            HT_FATAL("partition file: bad serial flag '", serial, "'");
        pf.partition.serial = serial == "1";
    }
    pf.partition.heuristic = expectKey(is, "heuristic");
    if (pf.partition.heuristic == "-")
        pf.partition.heuristic.clear();
    pf.partition.predicted_cycles =
        parseF64(expectKey(is, "predicted_cycles"), "predicted cycles");
    size_t tiles = parseU64(expectKey(is, "tiles"), "tile count");

    // Validate the bitmap length against the claimed tile count before
    // allocating: a corrupted count must not trigger a huge allocation.
    std::string bitmap = expectKey(is, "bitmap");
    if (bitmap.size() != tiles / 4 + (tiles % 4 ? 1 : 0))
        HT_FATAL("partition file: bitmap holds ", bitmap.size() * 4,
                 " bits for ", tiles, " tiles");
    pf.partition.is_hot.assign(tiles, 0);
    size_t bit = 0;
    for (char c : bitmap) {
        int v;
        if (c >= '0' && c <= '9')
            v = c - '0';
        else if (c >= 'a' && c <= 'f')
            v = 10 + c - 'a';
        else
            HT_FATAL("partition file: bad bitmap character '", c, "'");
        for (int b = 3; b >= 0 && bit < tiles; --b, ++bit)
            pf.partition.is_hot[bit] = (v >> b) & 1 ? 1 : 0;
    }
    if (bit < tiles)
        HT_FATAL("partition file: bitmap too short (", bit, " of ", tiles,
                 " bits)");
    return pf;
}

void
writePartitionFile(const Partition& p, const TileGrid& grid,
                   const std::string& matrix_name, const std::string& path)
{
    PartitionFile pf;
    pf.partition = p;
    pf.matrix_name = matrix_name;
    pf.tile_height = grid.tileHeight();
    pf.tile_width = grid.tileWidth();
    pf.grid_fingerprint = gridFingerprint(grid);
    std::ofstream f(path);
    if (!f)
        HT_FATAL("cannot open '", path, "' for writing");
    writePartition(pf, f);
    if (!f)
        HT_FATAL("write to '", path, "' failed");
}

Partition
readPartitionFile(const std::string& path, const TileGrid& grid)
{
    std::ifstream f(path);
    if (!f)
        HT_FATAL("cannot open '", path, "'");
    PartitionFile pf = readPartition(f);
    if (pf.tile_height != grid.tileHeight() ||
        pf.tile_width != grid.tileWidth())
        HT_FATAL("partition tile size ", pf.tile_height, "x", pf.tile_width,
                 " does not match grid ", grid.tileHeight(), "x",
                 grid.tileWidth());
    if (pf.partition.is_hot.size() != grid.numTiles())
        HT_FATAL("partition tile count mismatch");
    if (pf.grid_fingerprint != gridFingerprint(grid))
        HT_FATAL("partition was built for a different matrix "
                 "(fingerprint mismatch)");
    return pf.partition;
}

} // namespace hottiles
