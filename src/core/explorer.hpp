#pragma once

/**
 * @file
 * Architecture exploration with HotTiles (§VIII-B): evaluate "skewed"
 * iso-scale SPADE-Sextans alternatives (0-8 ... 8-0) using the model's
 * predicted runtimes, and compare against simulated actuals — the ASIC
 * scenario (best average architecture, Fig 16) and the reconfigurable
 * scenario (best architecture per matrix, Table IX).
 */

#include <string>
#include <vector>

#include "model/worker_traits.hpp"
#include "sparse/coo.hpp"

namespace hottiles {

/** One iso-scale design point evaluated on one matrix. */
struct ExplorationPoint
{
    int cold_scale = 0;
    int hot_scale = 0;
    double predicted_cycles = 0;  //!< HotTiles model prediction
    double actual_cycles = 0;     //!< simulated execution

    std::string label() const;  //!< "3-5" style
};

/**
 * Evaluate every iso-scale split with cold+hot == @p total_scale on
 * @p a.  Endpoints (0-N, N-0) fall back to homogeneous execution.
 * Architectures are calibrated internally (cached per process).
 */
std::vector<ExplorationPoint> exploreIsoScale(const CooMatrix& a,
                                              int total_scale,
                                              const KernelConfig& kernel);

/** Index of the minimum-predicted / minimum-actual point. */
size_t bestPredicted(const std::vector<ExplorationPoint>& pts);
size_t bestActual(const std::vector<ExplorationPoint>& pts);

} // namespace hottiles
