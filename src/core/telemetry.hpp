#pragma once

/**
 * @file
 * Prediction-error telemetry: charges the simulator's per-segment
 * [issue, retire] spans back against the analytical model's per-tile
 * estimates (th_i / tc_i, §V-A), yielding the per-unit relative error
 * distribution behind Fig 17's aggregate numbers.  This is the
 * instrument for finding *where* the five-task overlap model diverges
 * from simulated execution, not just by how much.
 *
 * Hot (streaming) workers execute one segment per tile, so the hot-side
 * comparison is exact.  Cold (demand) workers chop a row panel into
 * many pipelined segments whose spans overlap in flight; summing them
 * yields a latency-weighted panel time that over-counts overlap, so the
 * cold-side error is an upper-bound approximation — documented, and
 * still sharp enough to rank panels by model fidelity.
 */

#include <string_view>
#include <vector>

#include "partition/partition.hpp"
#include "sim/simulator.hpp"
#include "sparse/tiling.hpp"

namespace hottiles {

class MetricsRegistry;

/** One model unit's predicted-vs-simulated execution time. */
struct PredictionErrorSample
{
    uint32_t unit = 0;            //!< tile id (hot) or panel id (cold)
    double predicted_cycles = 0;  //!< model th_i (hot) / sum tc_i (cold)
    double simulated_cycles = 0;  //!< span cycles charged to the unit
    double error_pct = 0;         //!< 100 * |pred - sim| / sim
};

/** Per-unit prediction error of one simulated execution. */
struct PredictionErrorTelemetry
{
    std::vector<PredictionErrorSample> hot_tiles;    //!< exact per tile
    std::vector<PredictionErrorSample> cold_panels;  //!< approx per panel

    bool empty() const { return hot_tiles.empty() && cold_panels.empty(); }
};

/**
 * Compare the model estimates in @p ctx against the unit spans of one
 * simulated execution (@p sim must come from a run with
 * SimConfig::collect_spans).  @p is_hot is the simulated assignment;
 * units with zero simulated cycles are skipped.
 */
PredictionErrorTelemetry computePredictionError(
    const TileGrid& grid, const PartitionContext& ctx,
    const std::vector<uint8_t>& is_hot, const SimOutput& sim);

/** Aggregate error statistics over one sample set. */
struct PredictionErrorSummary
{
    size_t count = 0;
    double mean_pct = 0;
    double p50_pct = 0;
    double p90_pct = 0;
    double max_pct = 0;
};

/** Summarize the per-unit errors of one sample set (empty -> zeros).
 *  Takes the samples by value: percentiles need a sorted copy. */
PredictionErrorSummary summarizePredictionError(
    std::vector<PredictionErrorSample> samples);

/**
 * Feed the telemetry into registry histograms
 * `prediction_error.<label>.hot_tile_pct` and
 * `prediction_error.<label>.cold_panel_pct` (relative error in percent,
 * clamped to [0, 200) over 40 bins).
 */
void recordPredictionError(const PredictionErrorTelemetry& t,
                           std::string_view label);
void recordPredictionError(const PredictionErrorTelemetry& t,
                           std::string_view label, MetricsRegistry& reg);

} // namespace hottiles
