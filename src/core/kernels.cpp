#include "core/kernels.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "kernels/dispatch.hpp"

namespace hottiles {

namespace {

/** rowAlignedChunkBounds over a permuted row view: chunk boundaries of
 *  roughly @p grain entries that never split a row. */
std::vector<size_t>
permutedChunkBounds(const std::vector<Index>& rows,
                    const std::vector<uint32_t>& perm, size_t grain)
{
    const size_t n = perm.size();
    std::vector<size_t> bounds;
    bounds.push_back(0);
    size_t e = 0;
    while (e < n) {
        e = std::min(e + grain, n);
        while (e < n && rows[perm[e]] == rows[perm[e - 1]])
            ++e;
        bounds.push_back(e);
    }
    return bounds;
}

} // namespace

std::vector<Value>
referenceSpmv(const CooMatrix& a, const std::vector<Value>& x)
{
    HT_ASSERT(x.size() == a.cols(), "SpMV shape mismatch");

    // Row-panel parallelism: chunks never split a row, so each acc
    // entry is owned by one chunk and sums in the serial order.
    std::vector<double> acc(a.rows(), 0.0);
    if (a.isRowMajorSorted()) {
        const kernels::CooView view{a.rowIds().data(), a.colIds().data(),
                                    a.values().data(), a.nnz()};
        const std::vector<size_t> bounds =
            rowAlignedChunkBounds(a.rowIds(), kGrainNnz);
        kernels::spmvCooGolden(view, x.data(), acc.data(), bounds);
    } else {
        // Sort an index permutation only — same comparator and sort as
        // CooMatrix::sortRowMajor, so the accumulation order (and thus
        // the fp32-rounded result) is bit-identical to sorting a copy,
        // without the O(nnz) triple-array copy and gather.
        std::vector<uint32_t> perm(a.nnz());
        std::iota(perm.begin(), perm.end(), uint32_t(0));
        std::sort(perm.begin(), perm.end(), [&](uint32_t i, uint32_t j) {
            const Index ri = a.rowId(i);
            const Index rj = a.rowId(j);
            return ri != rj ? ri < rj : a.colId(i) < a.colId(j);
        });
        std::vector<size_t> bounds =
            permutedChunkBounds(a.rowIds(), perm, kGrainNnz);
        parallelFor(0, bounds.size() - 1, 1, [&](size_t cb, size_t ce) {
            for (size_t c = cb; c < ce; ++c)
                for (size_t i = bounds[c]; i < bounds[c + 1]; ++i) {
                    const uint32_t p = perm[i];
                    acc[a.rowId(p)] +=
                        double(a.value(p)) * double(x[a.colId(p)]);
                }
        });
    }
    std::vector<Value> y(a.rows());
    for (size_t i = 0; i < y.size(); ++i)
        y[i] = static_cast<Value>(acc[i]);
    return y;
}

CooMatrix
referenceSddmm(const CooMatrix& a, const DenseMatrix& u,
               const DenseMatrix& v)
{
    HT_ASSERT(u.rows() == a.rows(), "SDDMM: U row count mismatch");
    HT_ASSERT(v.rows() == a.cols(), "SDDMM: V row count mismatch");
    HT_ASSERT(u.cols() == v.cols(), "SDDMM: K mismatch between U and V");
    const Index k = u.cols();

    // Every output value depends on exactly one nonzero, so the value
    // recomputation parallelizes over plain nonzero chunks; the kernel
    // reads vals[i] before writing out[i], so in-place is safe.
    CooMatrix out = a;
    out.sortRowMajor();
    const kernels::CooView view{out.rowIds().data(), out.colIds().data(),
                                out.values().data(), out.nnz()};
    kernels::sddmm(view, k, u.row(0), v.row(0), out.valuesData(),
                   kernels::Policy::Golden);
    return out;
}

DenseMatrix
vectorAsMatrix(const std::vector<Value>& x)
{
    DenseMatrix m(static_cast<Index>(x.size()), 1);
    for (Index i = 0; i < m.rows(); ++i)
        m.at(i, 0) = x[i];
    return m;
}

std::vector<Value>
matrixAsVector(const DenseMatrix& m)
{
    HT_ASSERT(m.cols() == 1, "expected an Nx1 matrix");
    std::vector<Value> x(m.rows());
    for (Index i = 0; i < m.rows(); ++i)
        x[i] = m.at(i, 0);
    return x;
}

} // namespace hottiles
