#include "core/kernels.hpp"

#include "common/error.hpp"

namespace hottiles {

std::vector<Value>
referenceSpmv(const CooMatrix& a, const std::vector<Value>& x)
{
    HT_ASSERT(x.size() == a.cols(), "SpMV shape mismatch");
    std::vector<double> acc(a.rows(), 0.0);
    for (size_t i = 0; i < a.nnz(); ++i)
        acc[a.rowId(i)] += double(a.value(i)) * double(x[a.colId(i)]);
    std::vector<Value> y(a.rows());
    for (size_t i = 0; i < y.size(); ++i)
        y[i] = static_cast<Value>(acc[i]);
    return y;
}

CooMatrix
referenceSddmm(const CooMatrix& a, const DenseMatrix& u,
               const DenseMatrix& v)
{
    HT_ASSERT(u.rows() == a.rows(), "SDDMM: U row count mismatch");
    HT_ASSERT(v.rows() == a.cols(), "SDDMM: V row count mismatch");
    HT_ASSERT(u.cols() == v.cols(), "SDDMM: K mismatch between U and V");
    const Index k = u.cols();

    CooMatrix sorted = a;
    sorted.sortRowMajor();
    CooMatrix out(a.rows(), a.cols());
    out.reserve(a.nnz());
    for (size_t i = 0; i < sorted.nnz(); ++i) {
        const Value* ur = u.row(sorted.rowId(i));
        const Value* vr = v.row(sorted.colId(i));
        double dot = 0.0;
        for (Index j = 0; j < k; ++j)
            dot += double(ur[j]) * double(vr[j]);
        out.push(sorted.rowId(i), sorted.colId(i),
                 static_cast<Value>(double(sorted.value(i)) * dot));
    }
    return out;
}

DenseMatrix
vectorAsMatrix(const std::vector<Value>& x)
{
    DenseMatrix m(static_cast<Index>(x.size()), 1);
    for (Index i = 0; i < m.rows(); ++i)
        m.at(i, 0) = x[i];
    return m;
}

std::vector<Value>
matrixAsVector(const DenseMatrix& m)
{
    HT_ASSERT(m.cols() == 1, "expected an Nx1 matrix");
    std::vector<Value> x(m.rows());
    for (Index i = 0; i < m.rows(); ++i)
        x[i] = m.at(i, 0);
    return x;
}

} // namespace hottiles
