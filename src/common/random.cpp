#include "common/random.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hottiles {

uint64_t
Rng::nextBounded(uint64_t bound)
{
    HT_ASSERT(bound > 0, "nextBounded requires bound > 0");
    // Lemire's nearly-divisionless method with rejection for exactness.
    uint64_t threshold = (-bound) % bound;
    for (;;) {
        uint64_t x = (*this)();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        if (static_cast<uint64_t>(m) >= threshold)
            return static_cast<uint64_t>(m >> 64);
    }
}

uint64_t
Rng::nextRange(uint64_t lo, uint64_t hi)
{
    HT_ASSERT(lo <= hi, "nextRange requires lo <= hi");
    return lo + nextBounded(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::nextDouble(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

double
Rng::nextGaussian()
{
    double u1 = nextDouble();
    double u2 = nextDouble();
    if (u1 < 1e-300)
        u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

} // namespace hottiles
