#pragma once

/**
 * @file
 * ASCII table printer used by the benchmark harness to render paper-style
 * tables and figure data series.  Cells are strings; alignment is
 * column-wise (first column left, the rest right, overridable).
 */

#include <iosfwd>
#include <string>
#include <vector>

namespace hottiles {

/** Simple column-aligned ASCII table. */
class Table
{
  public:
    enum class Align { Left, Right };

    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Override alignment for column @p col (default: col 0 left, rest right). */
    void setAlign(size_t col, Align a);

    /** Append a row; must have exactly as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format doubles with @p digits decimals. */
    static std::string num(double v, int digits = 2);

    /** Render with column separators and a header rule. */
    void print(std::ostream& os) const;

    size_t rows() const { return rows_.size(); }
    size_t cols() const { return headers_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<Align> aligns_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace hottiles
