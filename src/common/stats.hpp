#pragma once

/**
 * @file
 * Lightweight statistics accumulators used by the simulator and the
 * benchmark harness: running summary (mean/min/max/stddev), geometric
 * mean, and a fixed-bin histogram.
 */

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace hottiles {

/** Running summary statistics over a stream of doubles. */
class Summary
{
  public:
    /** Add one observation. */
    void add(double x);

    uint64_t count() const { return n_; }
    double sum() const { return sum_; }
    double mean() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    /** Sample variance (n-1 denominator); 0 for fewer than 2 samples. */
    double variance() const;
    double stddev() const;
    /** Coefficient of variation (stddev/mean); 0 if mean is 0. */
    double cv() const;

    /** Merge another summary into this one. */
    void merge(const Summary& other);

  private:
    uint64_t n_ = 0;
    double sum_ = 0.0;
    double m2_ = 0.0;   // sum of squared deviations (Welford)
    double mean_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Geometric mean accumulator over positive values. */
class GeoMean
{
  public:
    /** Add one observation. @pre x > 0 (asserted: zero or negative
     *  would poison the log-sum with -inf/NaN downstream). */
    void add(double x);
    uint64_t count() const { return n_; }
    /** Geometric mean; 1.0 when empty. */
    double value() const;

  private:
    uint64_t n_ = 0;
    double log_sum_ = 0.0;
};

/** Fixed-width histogram over [lo, hi) with out-of-range clamping. */
class Histogram
{
  public:
    Histogram(double lo, double hi, size_t bins);

    void add(double x);
    uint64_t total() const { return total_; }
    size_t bins() const { return counts_.size(); }
    uint64_t binCount(size_t i) const { return counts_.at(i); }
    /** Lower edge of bin @p i. */
    double binLo(size_t i) const;
    /**
     * Value below which @p q (in [0,1], asserted) of the mass lies, at
     * bin resolution: the upper edge of the bin holding the
     * ceil(q*total)-th ordered sample.  Edge cases are pinned: an empty
     * histogram returns @c lo, q=0 the lower edge of the first
     * non-empty bin, q=1 the upper edge of the last non-empty bin.
     */
    double quantile(double q) const;

  private:
    double lo_, hi_, width_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

/** Compute geometric mean of a vector (1.0 when empty). */
double geomean(const std::vector<double>& xs);

/** Compute arithmetic mean of a vector (0.0 when empty). */
double mean(const std::vector<double>& xs);

} // namespace hottiles
