#pragma once

/**
 * @file
 * Small string helpers used by the MatrixMarket parser and the report
 * printers.  Kept deliberately minimal; no locale dependence.
 */

#include <string>
#include <string_view>
#include <vector>

namespace hottiles {

/** Strip leading and trailing ASCII whitespace. */
std::string_view trim(std::string_view s);

/** Split on any run of ASCII whitespace; empty tokens are dropped. */
std::vector<std::string_view> splitWs(std::string_view s);

/** Split on a single character; empty tokens are kept. */
std::vector<std::string_view> splitChar(std::string_view s, char sep);

/** Case-insensitive ASCII equality. */
bool iequals(std::string_view a, std::string_view b);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view s);

/** Format a double with @p digits significant decimals, trimming zeros. */
std::string formatDouble(double v, int digits = 2);

/** Format a byte count with a binary-unit suffix (e.g. "2.0 MiB"). */
std::string formatBytes(uint64_t bytes);

/** printf-style formatting into a std::string. */
std::string strPrintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace hottiles
