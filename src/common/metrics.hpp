#pragma once

/**
 * @file
 * Process-wide metrics registry: named counters, gauges, timers and
 * histograms that any layer (preprocess, model, simulator, benches) can
 * bump without plumbing a handle through every call site.  The registry
 * is thread-safe — evaluateMatrix runs four strategies concurrently on
 * the global pool — and snapshots to JSON for `hottiles simulate
 * --metrics` and the bench harness `metrics` blocks.
 *
 * Metric objects are owned by the registry and never deallocated while
 * it lives, so call sites may cache `Counter&`/`TimerMetric&` references
 * (the usual pattern is a function-local `static auto& c =
 * MetricsRegistry::global().counter("...")`).
 *
 * Metrics observe; they must never steer.  Nothing in the simulator may
 * branch on a metric value — the determinism suite pins bit-identical
 * SimStats with metrics both collected and reset.
 */

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/stats.hpp"

namespace hottiles {

/** Monotonically increasing event count. */
class Counter
{
  public:
    void add(uint64_t delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
    uint64_t value() const { return v_.load(std::memory_order_relaxed); }
    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> v_{0};
};

/** Last-write-wins instantaneous value (queue depth, config knobs). */
class Gauge
{
  public:
    void set(double v) { v_.store(v, std::memory_order_relaxed); }
    double value() const { return v_.load(std::memory_order_relaxed); }
    void reset() { v_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> v_{0.0};
};

/** Duration accumulator (seconds) backed by a Welford Summary. */
class TimerMetric
{
  public:
    void observe(double seconds);
    /** Snapshot under the lock (safe against concurrent observe()). */
    Summary snapshot() const;
    void reset();

  private:
    mutable std::mutex mu_;
    Summary summary_;
};

/** Value-distribution accumulator: fixed-bin Histogram plus a Summary
 *  so exact mean/min/max survive the bin clamping. */
class HistogramMetric
{
  public:
    HistogramMetric(double lo, double hi, size_t bins);

    void observe(double x);
    Histogram histogram() const;
    Summary summary() const;
    void reset();

  private:
    const double lo_, hi_;
    const size_t bins_;
    mutable std::mutex mu_;
    Histogram hist_;
    Summary summary_;
};

/**
 * Name → metric map.  `global()` is the instance everything shares;
 * separate instances exist only for tests.  Lookup creates on first
 * use; a histogram's bounds are fixed by the first caller and later
 * callers with different bounds get the existing metric (bounds are a
 * property of the name, asserted in debug builds).
 */
class MetricsRegistry
{
  public:
    static MetricsRegistry& global();

    Counter& counter(std::string_view name);
    Gauge& gauge(std::string_view name);
    TimerMetric& timer(std::string_view name);
    HistogramMetric& histogram(std::string_view name, double lo, double hi,
                               size_t bins);

    /**
     * Write one JSON object with `counters` / `gauges` / `timers` /
     * `histograms` sub-objects keyed by metric name.  Timers report
     * count/total_s/mean_s/min_s/max_s/stddev_s; histograms report
     * lo/hi/count/mean/min/max/p50/p90/p99 plus the raw bin counts.
     */
    void writeJson(std::ostream& os) const;

    /** Zero every registered metric (names stay registered). */
    void reset();

    size_t size() const;

  private:
    mutable std::mutex mu_;
    // node-based maps: references handed out stay valid forever
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
    std::map<std::string, std::unique_ptr<TimerMetric>, std::less<>> timers_;
    std::map<std::string, std::unique_ptr<HistogramMetric>, std::less<>>
        histograms_;
};

/**
 * RAII wall-clock span feeding a registry timer:
 *
 *     ScopedTimer t("preprocess.scan");
 *
 * observes elapsed monotonic seconds on destruction (or on an explicit
 * stop()).  Uses the global registry unless one is given.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(std::string_view name,
                         MetricsRegistry& reg = MetricsRegistry::global());
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

    /** Record now instead of at scope exit; idempotent. */
    double stop();

  private:
    TimerMetric& timer_;
    double start_s_;
    bool stopped_ = false;
};

/** Escape a string for inclusion in a JSON string literal. */
std::string jsonEscape(std::string_view s);

} // namespace hottiles
