#pragma once

/**
 * @file
 * Deterministic pseudo-random number generation.  Every generator in the
 * repository is seeded explicitly so that matrices, partitionings, and
 * simulations are bit-reproducible across runs and machines.  We use
 * xoshiro256** (public domain, Blackman & Vigna) seeded via SplitMix64.
 */

#include <array>
#include <cstdint>

namespace hottiles {

/** SplitMix64 step; used for seeding and cheap hashing. */
constexpr uint64_t
splitmix64(uint64_t& state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** generator.  Satisfies UniformRandomBitGenerator so it can
 * be used with <random> distributions, but the helpers below avoid
 * libstdc++ distribution portability issues by implementing their own
 * bounded sampling.
 */
class Rng
{
  public:
    using result_type = uint64_t;

    explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed. */
    void
    reseed(uint64_t seed)
    {
        uint64_t sm = seed;
        for (auto& s : state_)
            s = splitmix64(sm);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit value. */
    uint64_t
    operator()()
    {
        uint64_t result = rotl(state_[1] * 5, 7) * 9;
        uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    uint64_t nextBounded(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    uint64_t nextRange(uint64_t lo, uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform float in [lo, hi). */
    double nextDouble(double lo, double hi);

    /** Bernoulli trial with probability @p p. */
    bool nextBool(double p) { return nextDouble() < p; }

    /** Standard normal via Box-Muller (no cached spare; simple & stateless). */
    double nextGaussian();

  private:
    static constexpr uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<uint64_t, 4> state_{};
};

} // namespace hottiles
