#include "common/rss.hpp"

#include <sys/resource.h>

#include <algorithm>

#include "common/metrics.hpp"

namespace hottiles {

uint64_t
peakRssBytes()
{
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
#ifdef __APPLE__
    return static_cast<uint64_t>(ru.ru_maxrss); // bytes on Darwin
#else
    return static_cast<uint64_t>(ru.ru_maxrss) * 1024; // KiB on Linux
#endif
}

uint64_t
recordPeakRss()
{
    const uint64_t now = peakRssBytes();
    auto& g = MetricsRegistry::global().gauge("process.peak_rss_bytes");
    g.set(std::max(g.value(), static_cast<double>(now)));
    return now;
}

} // namespace hottiles
