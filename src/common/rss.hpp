#pragma once

/**
 * @file
 * Peak resident-set-size sampling.  `ru_maxrss` is a process-lifetime
 * high-water mark, so `recordPeakRss()` is meaningful at phase
 * boundaries ("RSS never exceeded X by the time this phase finished")
 * — the out-of-core bench isolates per-phase peaks by running each
 * phase in a child process instead.
 */

#include <cstdint>

namespace hottiles {

/** Process peak RSS in bytes via getrusage (0 if unavailable). */
uint64_t peakRssBytes();

/**
 * Sample peak RSS into the `process.peak_rss_bytes` gauge in the
 * global MetricsRegistry (max-update: the gauge only ever grows).
 * Returns the sampled value.
 */
uint64_t recordPeakRss();

} // namespace hottiles
