#pragma once

/**
 * @file
 * Error-reporting primitives, following the gem5 fatal/panic distinction:
 * fatal() is a user error (bad input, bad configuration) and throws a
 * recoverable exception; panic() is an internal invariant violation and
 * aborts.  HT_ASSERT is an always-on invariant check that panics.
 */

#include <sstream>
#include <stdexcept>
#include <string>

namespace hottiles {

/** Exception thrown for user-caused errors (bad files, bad configs). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& what) : std::runtime_error(what) {}
};

/** Report a user error: throws FatalError with file/line context. */
[[noreturn]] void fatalImpl(const char* file, int line, const std::string& msg);

/** Report an internal bug: prints context and aborts. */
[[noreturn]] void panicImpl(const char* file, int line, const std::string& msg);

namespace detail {

template <typename... Args>
std::string
concatToString(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

} // namespace hottiles

/** User-level error (bad input / configuration): throws hottiles::FatalError. */
#define HT_FATAL(...) \
    ::hottiles::fatalImpl(__FILE__, __LINE__, \
                          ::hottiles::detail::concatToString(__VA_ARGS__))

/** User-level error when @p cond holds (validation guard sugar). */
#define HT_FATAL_IF(cond, ...) \
    do { \
        if (cond) { \
            HT_FATAL(__VA_ARGS__); \
        } \
    } while (0)

/** Internal bug: prints a message and aborts. */
#define HT_PANIC(...) \
    ::hottiles::panicImpl(__FILE__, __LINE__, \
                          ::hottiles::detail::concatToString(__VA_ARGS__))

/** Always-on invariant check; panics with the stringified condition. */
#define HT_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ::hottiles::panicImpl(__FILE__, __LINE__, \
                ::hottiles::detail::concatToString( \
                    "assertion failed: " #cond " ", ##__VA_ARGS__)); \
        } \
    } while (0)

/**
 * Hot-path invariant check: identical to HT_ASSERT in debug builds,
 * compiled out under NDEBUG.  Reserve it for per-event checks inside
 * the simulator loop where the branch itself is measurable; anything
 * off the event hot path should stay on HT_ASSERT.
 */
#ifdef NDEBUG
#define HT_DASSERT(cond, ...) \
    do { \
        (void)sizeof(cond); \
    } while (0)
#else
#define HT_DASSERT(cond, ...) HT_ASSERT(cond, ##__VA_ARGS__)
#endif
