#pragma once

/**
 * @file
 * Units and conversions shared by the model and the simulator.  All
 * simulated time is in integer cycles ("ticks") at the accelerator clock;
 * conversions to wall-clock use the configured frequency.
 */

#include <cstdint>

namespace hottiles {

/** Simulated time in clock cycles. */
using Tick = uint64_t;

constexpr uint64_t kKiB = 1024ULL;
constexpr uint64_t kMiB = 1024ULL * kKiB;
constexpr uint64_t kGiB = 1024ULL * kMiB;

/** Decimal giga used for GB/s and GFLOP/s, matching vendor datasheets. */
constexpr double kGiga = 1e9;

/** Convert a bandwidth in GB/s to bytes per cycle at @p freq_ghz. */
constexpr double
gbpsToBytesPerCycle(double gbps, double freq_ghz)
{
    return gbps / freq_ghz;
}

/** Convert bytes-per-cycle at @p freq_ghz back to GB/s. */
constexpr double
bytesPerCycleToGbps(double bpc, double freq_ghz)
{
    return bpc * freq_ghz;
}

/** Convert cycles at @p freq_ghz to milliseconds. */
constexpr double
cyclesToMs(double cycles, double freq_ghz)
{
    return cycles / (freq_ghz * 1e6);
}

/** Convert cycles at @p freq_ghz to seconds. */
constexpr double
cyclesToSeconds(double cycles, double freq_ghz)
{
    return cycles / (freq_ghz * kGiga);
}

/** GFLOP/s achieved by @p flops executed in @p cycles at @p freq_ghz. */
constexpr double
gflops(double flops, double cycles, double freq_ghz)
{
    return cycles > 0.0 ? flops * freq_ghz / cycles : 0.0;
}

/** Round @p x up to the next multiple of @p align. @pre align > 0. */
constexpr uint64_t
roundUp(uint64_t x, uint64_t align)
{
    return (x + align - 1) / align * align;
}

/** Ceiling division. @pre d > 0. */
constexpr uint64_t
ceilDiv(uint64_t n, uint64_t d)
{
    return (n + d - 1) / d;
}

} // namespace hottiles
