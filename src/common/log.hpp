#pragma once

/**
 * @file
 * Minimal leveled logger.  Defaults to Warn so library consumers see only
 * actionable messages; benches raise it to Info for progress reporting.
 * Thread-compatible (not thread-safe): the simulator is single-threaded.
 */

#include <sstream>
#include <string>

namespace hottiles {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/** Global log sink configuration. */
class Log
{
  public:
    /** Set the minimum level that is emitted. */
    static void setLevel(LogLevel level) { level_ = level; }
    static LogLevel level() { return level_; }

    /** Emit a message at @p level (no newline needed). */
    static void write(LogLevel level, const std::string& msg);

  private:
    static LogLevel level_;
};

namespace detail {

template <typename... Args>
void
logAt(LogLevel level, Args&&... args)
{
    if (static_cast<int>(level) < static_cast<int>(Log::level()))
        return;
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    Log::write(level, oss.str());
}

} // namespace detail

template <typename... Args> void logDebug(Args&&... args)
{ detail::logAt(LogLevel::Debug, std::forward<Args>(args)...); }

template <typename... Args> void logInfo(Args&&... args)
{ detail::logAt(LogLevel::Info, std::forward<Args>(args)...); }

template <typename... Args> void logWarn(Args&&... args)
{ detail::logAt(LogLevel::Warn, std::forward<Args>(args)...); }

template <typename... Args> void logError(Args&&... args)
{ detail::logAt(LogLevel::Error, std::forward<Args>(args)...); }

} // namespace hottiles
