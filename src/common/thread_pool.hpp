#pragma once

/**
 * @file
 * Parallel-execution layer: a fixed-size worker pool plus the
 * parallelFor / parallelReduce helpers every hot path of the
 * preprocessing pipeline (tiling, per-tile model evaluation,
 * partitioning) and the reference kernels use.
 *
 * Determinism contract (see docs/PARALLELISM.md): work is split into
 * chunks whose boundaries depend ONLY on the range and the grain —
 * never on the thread count — and parallelReduce combines per-chunk
 * partial results in ascending chunk order on the calling thread.
 * Together with race-free chunk bodies this makes every result
 * bit-identical across thread counts, including --threads 1.
 *
 * Exception contract: if chunk bodies throw, the exception of the
 * lowest-indexed failing chunk is rethrown on the calling thread after
 * all chunks have finished (again independent of the thread count).
 *
 * Nested parallelism: a parallelFor issued from inside a pool worker
 * runs its chunks inline on that worker (same chunk boundaries, serial
 * execution), so nesting can never deadlock the pool.
 */

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace hottiles {

/**
 * A fixed-size pool of worker threads.  A pool configured with
 * `threads` total parallelism spawns `threads - 1` workers; the thread
 * that calls parallelFor always participates as the extra executor, so
 * `threads <= 1` means fully inline (serial) execution with zero
 * spawned threads.
 *
 * Shutdown contract (the serving daemon stops and restarts pools, see
 * docs/SERVING.md): shutdown() — and the destructor, which calls it —
 * stops admission, *discards* every queued-but-unstarted task, lets
 * tasks already running finish, and joins the workers.  Every task
 * therefore either runs exactly once to completion or never starts;
 * discardedTasks() reports how many were dropped.  Discarding is safe
 * for parallelFor's internal helper tasks: the calling thread always
 * drains the remaining chunks itself.
 */
class ThreadPool
{
  public:
    /** Create a pool with @p threads total parallelism (min 1). */
    explicit ThreadPool(unsigned threads);
    ~ThreadPool();
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Total parallelism (spawned workers + the calling thread). */
    unsigned threads() const { return workers_ + 1; }

    /**
     * Fire-and-forget task execution on the pool's workers.  Returns
     * false (and drops @p fn) once shutdown has begun.  On a serial
     * pool (zero spawned workers) the task runs inline on the calling
     * thread before submit returns.
     */
    bool submit(std::function<void()> fn);

    /**
     * Deterministic teardown: stop admission, discard every
     * queued-but-unstarted task, wait for running tasks, join workers.
     * Idempotent; called by the destructor.
     */
    void shutdown();

    /** Tasks discarded unstarted by shutdown(). */
    size_t discardedTasks() const { return discarded_; }

    /** Queued-but-unstarted tasks (submitted + parallelFor helpers). */
    size_t pendingTasks() const;

    /**
     * Run fn(chunk_begin, chunk_end) over [begin, end) in chunks of
     * @p grain (the final chunk may be short).  Blocks until every
     * chunk has run; rethrows the lowest-indexed chunk's exception.
     */
    void parallelFor(size_t begin, size_t end, size_t grain,
                     const std::function<void(size_t, size_t)>& fn);

    /** True when the calling thread is one of this pool's workers. */
    static bool onWorkerThread();

    /**
     * Reconfigure the global pool to @p threads total parallelism
     * (0 = defaultThreads()).  Safe against concurrent parallelFor
     * calls: in-flight work keeps the old pool alive until it returns.
     */
    static void setGlobalThreads(unsigned threads);

    /** Current total parallelism of the global pool. */
    static unsigned globalThreads();

    /**
     * Default parallelism: the HOTTILES_THREADS environment variable
     * when set to a positive integer, else std::thread::hardware_concurrency.
     */
    static unsigned defaultThreads();

  private:
    struct Impl;
    Impl* impl_;
    unsigned workers_ = 0;
    size_t discarded_ = 0;
};

/** Default grain sizes for the library's hot loops (docs/PARALLELISM.md). */
inline constexpr size_t kGrainTiles = 256;    //!< per-tile model loops
inline constexpr size_t kGrainNnz = 1u << 15; //!< per-nonzero loops
inline constexpr size_t kGrainPanels = 4;     //!< per-row-panel loops
inline constexpr size_t kGrainRows = 2048;    //!< per-dense-row loops

/** parallelFor on the process-global pool (lazily created). */
void parallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

/**
 * Deterministic reduction over [begin, end): chunk_fn(b, e) produces a
 * partial result per grain-sized chunk and combine folds the partials
 * left-to-right in chunk order starting from @p init.  Chunk boundaries
 * and combine order are independent of the thread count, so the result
 * is bit-identical to a single-threaded run.
 */
template <typename T, typename ChunkFn, typename CombineFn>
T
parallelReduce(size_t begin, size_t end, size_t grain, T init,
               ChunkFn&& chunk_fn, CombineFn&& combine)
{
    if (end <= begin)
        return init;
    if (grain == 0)
        grain = 1;
    const size_t nchunks = (end - begin + grain - 1) / grain;
    std::vector<T> partials(nchunks);
    parallelFor(begin, end, grain, [&](size_t b, size_t e) {
        partials[(b - begin) / grain] = chunk_fn(b, e);
    });
    T acc = std::move(init);
    for (T& p : partials)
        acc = combine(std::move(acc), std::move(p));
    return acc;
}

} // namespace hottiles
