#include "common/metrics.hpp"

#include <chrono>
#include <cstdio>
#include <limits>
#include <ostream>

#include "common/error.hpp"

namespace hottiles {

namespace {

double
nowSeconds()
{
    using Clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(Clock::now().time_since_epoch())
        .count();
}

} // namespace

void
TimerMetric::observe(double seconds)
{
    std::lock_guard<std::mutex> lk(mu_);
    summary_.add(seconds);
}

Summary
TimerMetric::snapshot() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return summary_;
}

void
TimerMetric::reset()
{
    std::lock_guard<std::mutex> lk(mu_);
    summary_ = Summary{};
}

HistogramMetric::HistogramMetric(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), bins_(bins), hist_(lo, hi, bins)
{
}

void
HistogramMetric::observe(double x)
{
    std::lock_guard<std::mutex> lk(mu_);
    hist_.add(x);
    summary_.add(x);
}

Histogram
HistogramMetric::histogram() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return hist_;
}

Summary
HistogramMetric::summary() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return summary_;
}

void
HistogramMetric::reset()
{
    std::lock_guard<std::mutex> lk(mu_);
    hist_ = Histogram(lo_, hi_, bins_);
    summary_ = Summary{};
}

MetricsRegistry&
MetricsRegistry::global()
{
    static MetricsRegistry reg;
    return reg;
}

Counter&
MetricsRegistry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = counters_.find(name);
    if (it == counters_.end())
        it = counters_.emplace(std::string(name), std::make_unique<Counter>())
                 .first;
    return *it->second;
}

Gauge&
MetricsRegistry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = gauges_.find(name);
    if (it == gauges_.end())
        it = gauges_.emplace(std::string(name), std::make_unique<Gauge>())
                 .first;
    return *it->second;
}

TimerMetric&
MetricsRegistry::timer(std::string_view name)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = timers_.find(name);
    if (it == timers_.end())
        it = timers_
                 .emplace(std::string(name), std::make_unique<TimerMetric>())
                 .first;
    return *it->second;
}

HistogramMetric&
MetricsRegistry::histogram(std::string_view name, double lo, double hi,
                           size_t bins)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_
                 .emplace(std::string(name),
                          std::make_unique<HistogramMetric>(lo, hi, bins))
                 .first;
    }
    return *it->second;
}

namespace {

void
writeDouble(std::ostream& os, double v)
{
    // JSON has no inf/nan literals; clamp to null so the file stays
    // loadable by strict parsers (python3 -m json.tool in CI).
    if (v != v || v == std::numeric_limits<double>::infinity() ||
        v == -std::numeric_limits<double>::infinity()) {
        os << "null";
        return;
    }
    os << v;
}

void
writeSummaryFields(std::ostream& os, const Summary& s)
{
    os << "\"count\":" << s.count() << ",\"total_s\":";
    writeDouble(os, s.sum());
    os << ",\"mean_s\":";
    writeDouble(os, s.mean());
    os << ",\"min_s\":";
    writeDouble(os, s.min());
    os << ",\"max_s\":";
    writeDouble(os, s.max());
    os << ",\"stddev_s\":";
    writeDouble(os, s.stddev());
}

} // namespace

void
MetricsRegistry::writeJson(std::ostream& os) const
{
    std::lock_guard<std::mutex> lk(mu_);
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, c] : counters_) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": " << c->value();
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
    first = true;
    for (const auto& [name, g] : gauges_) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": ";
        writeDouble(os, g->value());
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"timers\": {";
    first = true;
    for (const auto& [name, t] : timers_) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": {";
        writeSummaryFields(os, t->snapshot());
        os << "}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : histograms_) {
        Histogram hist = h->histogram();
        Summary s = h->summary();
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": {\"lo\":";
        writeDouble(os, hist.binLo(0));
        os << ",\"hi\":";
        writeDouble(os, hist.binLo(hist.bins()));
        os << ",\"count\":" << s.count() << ",\"mean\":";
        writeDouble(os, s.mean());
        os << ",\"min\":";
        writeDouble(os, s.min());
        os << ",\"max\":";
        writeDouble(os, s.max());
        os << ",\"p50\":";
        writeDouble(os, hist.quantile(0.5));
        os << ",\"p90\":";
        writeDouble(os, hist.quantile(0.9));
        os << ",\"p99\":";
        writeDouble(os, hist.quantile(0.99));
        os << ",\"bins\":[";
        for (size_t i = 0; i < hist.bins(); ++i)
            os << (i ? "," : "") << hist.binCount(i);
        os << "]}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "}\n}\n";
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [name, c] : counters_)
        c->reset();
    for (auto& [name, g] : gauges_)
        g->reset();
    for (auto& [name, t] : timers_)
        t->reset();
    for (auto& [name, h] : histograms_)
        h->reset();
}

size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return counters_.size() + gauges_.size() + timers_.size() +
           histograms_.size();
}

ScopedTimer::ScopedTimer(std::string_view name, MetricsRegistry& reg)
    : timer_(reg.timer(name)), start_s_(nowSeconds())
{
}

ScopedTimer::~ScopedTimer()
{
    stop();
}

double
ScopedTimer::stop()
{
    if (stopped_)
        return 0.0;
    stopped_ = true;
    double elapsed = nowSeconds() - start_s_;
    timer_.observe(elapsed);
    return elapsed;
}

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace hottiles
