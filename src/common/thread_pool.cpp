#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

namespace hottiles {

namespace {

/** Set while the current thread is executing pool work. */
thread_local bool t_on_worker = false;

/** One parallelFor invocation: shared chunk counter + completion. */
struct ForJob
{
    size_t begin = 0;
    size_t grain = 1;
    size_t end = 0;
    size_t nchunks = 0;
    const std::function<void(size_t, size_t)>* fn = nullptr;

    std::atomic<size_t> next{0};
    std::vector<std::exception_ptr> errors;

    std::mutex mu;
    std::condition_variable cv;
    size_t done = 0;  // guarded by mu

    /** Claim and run chunks until none are left. */
    void
    drain()
    {
        size_t ran = 0;
        for (;;) {
            size_t c = next.fetch_add(1, std::memory_order_relaxed);
            if (c >= nchunks)
                break;
            size_t b = begin + c * grain;
            size_t e = std::min(end, b + grain);
            try {
                (*fn)(b, e);
            } catch (...) {
                errors[c] = std::current_exception();
            }
            ++ran;
        }
        if (ran > 0) {
            std::lock_guard<std::mutex> lock(mu);
            done += ran;
            if (done == nchunks)
                cv.notify_all();
        }
    }
};

} // namespace

struct ThreadPool::Impl
{
    std::vector<std::thread> threads;
    std::deque<std::function<void()>> queue;
    std::mutex mu;
    std::condition_variable cv;
    bool stop = false;

    void
    workerLoop()
    {
        t_on_worker = true;
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(mu);
                cv.wait(lock, [&] { return stop || !queue.empty(); });
                if (stop && queue.empty())
                    return;
                task = std::move(queue.front());
                queue.pop_front();
            }
            task();
        }
    }
};

ThreadPool::ThreadPool(unsigned threads) : impl_(new Impl)
{
    workers_ = threads > 1 ? threads - 1 : 0;
    impl_->threads.reserve(workers_);
    for (unsigned i = 0; i < workers_; ++i)
        impl_->threads.emplace_back([this] { impl_->workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    shutdown();
    delete impl_;
}

void
ThreadPool::shutdown()
{
    // Move the backlog out under the lock, destroy it outside: a
    // discarded task's closure may itself take locks in its destructor.
    std::deque<std::function<void()>> discarded;
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        impl_->stop = true;
        discarded.swap(impl_->queue);
    }
    discarded_ += discarded.size();
    discarded.clear();
    impl_->cv.notify_all();
    for (auto& t : impl_->threads)
        t.join();
    impl_->threads.clear();
}

bool
ThreadPool::submit(std::function<void()> fn)
{
    if (workers_ == 0) {
        // Serial pool: no worker will ever pop the queue; run inline so
        // a submitted task is never silently stranded.
        bool stopped;
        {
            std::lock_guard<std::mutex> lock(impl_->mu);
            stopped = impl_->stop;
        }
        if (stopped)
            return false;
        fn();
        return true;
    }
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        if (impl_->stop)
            return false;
        impl_->queue.push_back(std::move(fn));
    }
    impl_->cv.notify_one();
    return true;
}

size_t
ThreadPool::pendingTasks() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->queue.size();
}

void
ThreadPool::parallelFor(size_t begin, size_t end, size_t grain,
                        const std::function<void(size_t, size_t)>& fn)
{
    if (end <= begin)
        return;
    if (grain == 0)
        grain = 1;
    const size_t nchunks = (end - begin + grain - 1) / grain;

    // Inline execution: serial pool, a single chunk, or a nested call
    // from a worker (which must not block waiting on its own pool).
    // Chunk boundaries are identical to the parallel path.
    if (workers_ == 0 || nchunks == 1 || onWorkerThread()) {
        for (size_t c = 0; c < nchunks; ++c) {
            size_t b = begin + c * grain;
            fn(b, std::min(end, b + grain));
        }
        return;
    }

    auto job = std::make_shared<ForJob>();
    job->begin = begin;
    job->grain = grain;
    job->end = end;
    job->nchunks = nchunks;
    job->fn = &fn;
    job->errors.resize(nchunks);

    // Enqueue one drain task per worker that could get a chunk; the
    // calling thread drains too, so a task finding no chunks is free.
    size_t helpers = std::min<size_t>(workers_, nchunks - 1);
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        for (size_t i = 0; i < helpers; ++i)
            impl_->queue.emplace_back([job] { job->drain(); });
    }
    impl_->cv.notify_all();

    job->drain();
    {
        std::unique_lock<std::mutex> lock(job->mu);
        job->cv.wait(lock, [&] { return job->done == job->nchunks; });
    }
    for (size_t c = 0; c < nchunks; ++c)
        if (job->errors[c])
            std::rethrow_exception(job->errors[c]);
}

bool
ThreadPool::onWorkerThread()
{
    return t_on_worker;
}

namespace {

std::mutex g_pool_mu;
std::shared_ptr<ThreadPool> g_pool;

std::shared_ptr<ThreadPool>
globalPool()
{
    std::lock_guard<std::mutex> lock(g_pool_mu);
    if (!g_pool)
        g_pool = std::make_shared<ThreadPool>(ThreadPool::defaultThreads());
    return g_pool;
}

} // namespace

void
parallelFor(size_t begin, size_t end, size_t grain,
            const std::function<void(size_t, size_t)>& fn)
{
    // Hold a reference for the duration of the call so a concurrent
    // setGlobalThreads cannot destroy the pool mid-run.
    std::shared_ptr<ThreadPool> pool = globalPool();
    pool->parallelFor(begin, end, grain, fn);
}

void
ThreadPool::setGlobalThreads(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreads();
    std::shared_ptr<ThreadPool> fresh = std::make_shared<ThreadPool>(threads);
    std::shared_ptr<ThreadPool> old;
    {
        std::lock_guard<std::mutex> lock(g_pool_mu);
        old = std::exchange(g_pool, std::move(fresh));
    }
    // `old` destructs (joins) outside the lock.
}

unsigned
ThreadPool::globalThreads()
{
    return globalPool()->threads();
}

unsigned
ThreadPool::defaultThreads()
{
    if (const char* env = std::getenv("HOTTILES_THREADS")) {
        char* endp = nullptr;
        long n = std::strtol(env, &endp, 10);
        if (endp != env && *endp == '\0' && n > 0)
            return static_cast<unsigned>(n);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

} // namespace hottiles
