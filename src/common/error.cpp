#include "common/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace hottiles {

void
fatalImpl(const char* file, int line, const std::string& msg)
{
    std::ostringstream oss;
    oss << "fatal: " << msg << " [" << file << ":" << line << "]";
    throw FatalError(oss.str());
}

void
panicImpl(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "panic: %s [%s:%d]\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

} // namespace hottiles
