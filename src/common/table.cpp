#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/error.hpp"

namespace hottiles {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::Right)
{
    HT_ASSERT(!headers_.empty(), "table needs at least one column");
    aligns_[0] = Align::Left;
}

void
Table::setAlign(size_t col, Align a)
{
    aligns_.at(col) = a;
}

void
Table::addRow(std::vector<std::string> cells)
{
    HT_ASSERT(cells.size() == headers_.size(), "row width mismatch: got ",
              cells.size(), " want ", headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

void
Table::print(std::ostream& os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emitRow = [&](const std::vector<std::string>& cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << (c == 0 ? "| " : " ");
            size_t pad = widths[c] - cells[c].size();
            if (aligns_[c] == Align::Right)
                os << std::string(pad, ' ') << cells[c];
            else
                os << cells[c] << std::string(pad, ' ');
            os << " |";
        }
        os << "\n";
    };

    emitRow(headers_);
    for (size_t c = 0; c < headers_.size(); ++c) {
        os << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
    }
    os << "\n";
    for (const auto& row : rows_)
        emitRow(row);
}

} // namespace hottiles
