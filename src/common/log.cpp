#include "common/log.hpp"

#include <cstdio>

namespace hottiles {

LogLevel Log::level_ = LogLevel::Warn;

void
Log::write(LogLevel level, const std::string& msg)
{
    static const char* names[] = {"debug", "info", "warn", "error"};
    int idx = static_cast<int>(level);
    if (idx < 0 || idx > 3)
        return;
    std::fprintf(stderr, "[%s] %s\n", names[idx], msg.c_str());
}

} // namespace hottiles
