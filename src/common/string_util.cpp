#include "common/string_util.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace hottiles {

namespace {

bool
isWs(char c)
{
    return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' ||
           c == '\f';
}

} // namespace

std::string_view
trim(std::string_view s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && isWs(s[b]))
        ++b;
    while (e > b && isWs(s[e - 1]))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string_view>
splitWs(std::string_view s)
{
    std::vector<std::string_view> out;
    size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() && isWs(s[i]))
            ++i;
        size_t b = i;
        while (i < s.size() && !isWs(s[i]))
            ++i;
        if (i > b)
            out.push_back(s.substr(b, i - b));
    }
    return out;
}

std::vector<std::string_view>
splitChar(std::string_view s, char sep)
{
    std::vector<std::string_view> out;
    size_t b = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.push_back(s.substr(b, i - b));
            b = i + 1;
        }
    }
    return out;
}

bool
iequals(std::string_view a, std::string_view b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    }
    return true;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (char& c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::string
formatDouble(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    std::string s(buf);
    if (s.find('.') != std::string::npos) {
        while (!s.empty() && s.back() == '0')
            s.pop_back();
        if (!s.empty() && s.back() == '.')
            s.pop_back();
    }
    return s;
}

std::string
formatBytes(uint64_t bytes)
{
    static const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    double v = static_cast<double>(bytes);
    int u = 0;
    while (v >= 1024.0 && u < 4) {
        v /= 1024.0;
        ++u;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, units[u]);
    return buf;
}

std::string
strPrintf(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<size_t>(n));
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    }
    va_end(ap2);
    return out;
}

} // namespace hottiles
