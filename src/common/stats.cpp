#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hottiles {

void
Summary::add(double x)
{
    ++n_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
Summary::mean() const
{
    return n_ ? mean_ : 0.0;
}

double
Summary::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

double
Summary::cv() const
{
    double m = mean();
    return m != 0.0 ? stddev() / m : 0.0;
}

void
Summary::merge(const Summary& other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    uint64_t n = n_ + other.n_;
    double delta = other.mean_ - mean_;
    double mean = mean_ + delta * static_cast<double>(other.n_) / n;
    m2_ = m2_ + other.m2_ +
          delta * delta * static_cast<double>(n_) * other.n_ / n;
    mean_ = mean;
    n_ = n;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
GeoMean::add(double x)
{
    HT_ASSERT(x > 0.0, "geomean requires positive values");
    ++n_;
    log_sum_ += std::log(x);
}

double
GeoMean::value() const
{
    return n_ ? std::exp(log_sum_ / static_cast<double>(n_)) : 1.0;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0)
{
    HT_ASSERT(hi > lo && bins > 0, "bad histogram bounds");
}

void
Histogram::add(double x)
{
    double rel = (x - lo_) / width_;
    auto idx = static_cast<int64_t>(std::floor(rel));
    idx = std::clamp<int64_t>(idx, 0, static_cast<int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<size_t>(idx)];
    ++total_;
}

double
Histogram::binLo(size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::quantile(double q) const
{
    HT_ASSERT(q >= 0.0 && q <= 1.0, "quantile q out of [0,1]: ", q);
    if (total_ == 0)
        return lo_;
    if (q == 0.0) {
        for (size_t i = 0; i < counts_.size(); ++i)
            if (counts_[i] > 0)
                return binLo(i);
    }
    // Upper edge of the bin holding the ceil(q*total)-th ordered sample;
    // q == 1 therefore lands on the last non-empty bin's upper edge even
    // when trailing bins are empty.
    double target = q * static_cast<double>(total_);
    uint64_t acc = 0;
    for (size_t i = 0; i < counts_.size(); ++i) {
        acc += counts_[i];
        if (static_cast<double>(acc) >= target)
            return binLo(i) + width_;
    }
    return hi_;
}

double
geomean(const std::vector<double>& xs)
{
    GeoMean g;
    for (double x : xs)
        g.add(x);
    return g.value();
}

double
mean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

} // namespace hottiles
