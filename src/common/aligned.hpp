#pragma once

/**
 * @file
 * Over-aligned storage for dense operands.  The SIMD kernels in
 * src/kernels issue wide loads/stores against DenseMatrix rows; giving
 * the backing allocation cache-line alignment keeps the first row of
 * every matrix on a 64-byte boundary (rows after the first are aligned
 * whenever cols * sizeof(Value) is a multiple of the alignment, e.g.
 * K = 16 or 32 floats) and guarantees vector loads never straddle a
 * page for the aligned-K fast paths.
 */

#include <cstddef>
#include <cstdint>
#include <new>

namespace hottiles {

/** Cache-line alignment used for dense matrix storage. */
inline constexpr std::size_t kDenseAlign = 64;

/**
 * Minimal std::allocator drop-in returning @p Align-aligned memory.
 * Propagates through std::vector; equality is stateless.
 */
template <typename T, std::size_t Align = kDenseAlign>
class AlignedAllocator
{
  public:
    using value_type = T;
    static constexpr std::align_val_t kAlign{Align};

    AlignedAllocator() = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept
    {
    }

    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };

    T* allocate(std::size_t n)
    {
        return static_cast<T*>(::operator new(n * sizeof(T), kAlign));
    }

    void deallocate(T* p, std::size_t) noexcept
    {
        ::operator delete(p, kAlign);
    }

    friend bool operator==(const AlignedAllocator&, const AlignedAllocator&)
    {
        return true;
    }
    friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&)
    {
        return false;
    }
};

/** True when @p p sits on a @p align-byte boundary. */
inline bool
isAligned(const void* p, std::size_t align = kDenseAlign)
{
    return (reinterpret_cast<std::uintptr_t>(p) & (align - 1)) == 0;
}

} // namespace hottiles
