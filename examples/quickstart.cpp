/**
 * @file
 * Quickstart: the minimal end-to-end HotTiles flow.
 *
 *  1. Obtain a sparse matrix (here: the `pap` citation-network proxy, or
 *     a MatrixMarket file passed on the command line).
 *  2. Pick a heterogeneous architecture and calibrate its vis_lat
 *     parameters with profiling runs (cached per process).
 *  3. Run the HotTiles preprocessing pipeline: tile, model, partition.
 *  4. Simulate every execution strategy and print the comparison.
 */

#include <iostream>

#include "core/calibrate.hpp"
#include "core/execution.hpp"
#include "common/table.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/suite.hpp"

using namespace hottiles;

int
main(int argc, char** argv)
{
    // 1. The input matrix.
    CooMatrix a = argc > 1 ? readMatrixMarketFile(argv[1])
                           : makeSuiteMatrix("pap");
    std::cout << "matrix: " << a.rows() << "x" << a.cols() << ", "
              << a.nnz() << " nonzeros, avg degree " << a.avgDegree()
              << "\n";

    // 2. Architecture: SPADE (cold) + Sextans (hot), Table IV scale 4.
    Architecture arch = calibrated(makeSpadeSextans(4));
    std::cout << "architecture: " << arch.name << " — " << arch.cold.count
              << " cold workers, " << arch.hot.count
              << " hot worker(s), " << arch.mem_gbps << " GB/s shared\n";

    // 3 + 4. Preprocess and simulate all strategies.
    MatrixEvaluation ev = evaluateMatrix(arch, a, "input");

    const Partition& p = ev.hottiles.partition;
    std::cout << "HotTiles chose: " << p.heuristic
              << (p.serial ? " (serial)" : " (parallel)") << ", "
              << 100.0 * p.hotTileFraction() << "% of tiles hot\n\n";

    Table t({"Strategy", "Runtime (ms)", "Speedup vs worst homog.",
             "Avg BW (GB/s)"});
    auto row = [&](const char* name, const StrategyOutcome& o) {
        t.addRow({name, Table::num(o.ms(), 3),
                  Table::num(ev.speedupOverWorst(o), 2),
                  Table::num(o.stats.avg_bw_gbps, 1)});
    };
    row("HotOnly", ev.hot_only);
    row("ColdOnly", ev.cold_only);
    row("IUnaware", ev.iunaware);
    row("HotTiles", ev.hottiles);
    t.print(std::cout);

    std::cout << "\npreprocessing: " << ev.preprocess.total() * 1e3
              << " ms total, " << 100.0 * ev.preprocess.overheadFraction()
              << "% HotTiles-specific\n";
    return 0;
}
