/**
 * @file
 * SDDMM example (§X): the core kernel of matrix-factorization
 * recommender training.  Given a sparse ratings matrix R and latent
 * factor matrices U (users) and V (items), each training step needs
 * out(i,j) = R(i,j) - dot(U[i,:], V[j,:]) on R's nonzeros — a sampled
 * dense-dense product with exactly SpMM's access pattern, so the same
 * HotTiles partition accelerates it.
 *
 * The example partitions a power-law ratings matrix once, runs the
 * SDDMM under every strategy, and validates the simulated output
 * against the reference kernel.
 */

#include <cmath>
#include <iostream>

#include "common/random.hpp"
#include "common/table.hpp"
#include "core/calibrate.hpp"
#include "core/execution.hpp"
#include "core/kernels.hpp"

#include "sparse/generators.hpp"

using namespace hottiles;

int
main()
{
    // Ratings: 24k users x 24k items, power-law popularity.
    CooMatrix ratings =
        genRmat(24576, 500000, 0.5, 0.22, 0.22, 0.06, 0x5DD);
    const Index latent = 32;
    std::cout << "ratings: " << ratings.rows() << " users x "
              << ratings.cols() << " items, " << ratings.nnz()
              << " observed entries; " << latent << " latent factors\n";

    DenseMatrix u(ratings.rows(), latent);
    DenseMatrix v(ratings.cols(), latent);
    Rng rng(0x5DD);
    u.fillRandom(rng);
    v.fillRandom(rng);

    Architecture arch = calibrated(makeSpadeSextans(4));
    HotTilesOptions opts;
    opts.kernel = sddmmKernel(latent);
    MatrixEvaluation ev = evaluateMatrix(arch, ratings, "ratings", opts);

    Table t({"Strategy", "ms per SDDMM", "Speedup vs worst homog."});
    auto row = [&](const char* name, const StrategyOutcome& o) {
        t.addRow({name, Table::num(o.ms(), 3),
                  Table::num(ev.speedupOverWorst(o), 2)});
    };
    row("HotOnly", ev.hot_only);
    row("ColdOnly", ev.cold_only);
    row("IUnaware", ev.iunaware);
    row("HotTiles", ev.hottiles);
    t.print(std::cout);

    // Validate the functional output of the chosen partition.
    HotTiles ht(arch, ratings, opts);
    SimConfig cfg;
    cfg.compute_values = true;
    cfg.din = &v;
    cfg.u = &u;
    SimOutput out =
        simulateExecution(arch, ht.grid(), ht.partition().is_hot,
                          ht.partition().serial, opts.kernel, cfg);
    CooMatrix ref = referenceSddmm(ratings, u, v);
    double max_err = 0.0;
    for (size_t i = 0; i < ref.nnz(); ++i)
        max_err = std::max(max_err, double(std::abs(out.sddmm_out.value(i) -
                                                    ref.value(i))));
    std::cout << "\nSDDMM output validated against the reference kernel "
              << "(max abs error " << max_err << ")\n"
              << "SDDMM writes one scalar per nonzero, so no Merger is "
                 "needed even without atomics.\n";
    return 0;
}
