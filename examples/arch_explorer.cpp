/**
 * @file
 * Architecture exploration example (§VIII-B): given a workload matrix,
 * use the HotTiles analytical model to pick the best "skewed" iso-scale
 * SPADE-Sextans design (how much silicon to spend on cold vs hot
 * workers), then verify the recommendation in the simulator — the
 * reconfigurable-accelerator (FPGA) scenario of Table IX.
 *
 * Usage: arch_explorer [matrix.mtx] [iso_scale_total]
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "core/explorer.hpp"
#include "sparse/generators.hpp"
#include "sparse/matrix_market.hpp"

using namespace hottiles;

int
main(int argc, char** argv)
{
    CooMatrix m = argc > 1
                      ? readMatrixMarketFile(argv[1])
                      : genCommunity(16384, 50.0, 64, 256, 0.8, 0xA5C);
    int total = argc > 2 ? std::atoi(argv[2]) : 8;
    std::cout << "workload: " << m.rows() << "x" << m.cols() << ", "
              << m.nnz() << " nonzeros; exploring cold+hot = " << total
              << "\n\n";

    auto pts = exploreIsoScale(m, total, KernelConfig{});

    Table t({"Design (cold-hot)", "Predicted cycles", "Simulated cycles",
             "Prediction error %"});
    for (const auto& pt : pts) {
        double err =
            100.0 * std::abs(pt.predicted_cycles - pt.actual_cycles) /
            pt.actual_cycles;
        t.addRow({pt.label(), Table::num(pt.predicted_cycles, 0),
                  Table::num(pt.actual_cycles, 0), Table::num(err, 1)});
    }
    t.print(std::cout);

    size_t bp = bestPredicted(pts);
    size_t ba = bestActual(pts);
    std::cout << "\nmodel recommends " << pts[bp].label()
              << "; the simulator's true best is " << pts[ba].label()
              << (bp == ba ? " — recommendation confirmed." : ".") << "\n";
    double achieved = pts[ba].actual_cycles / pts[bp].actual_cycles;
    std::cout << "configuring as recommended achieves "
              << Table::num(100.0 * achieved, 1)
              << "% of the oracle configuration's performance.\n";
    return 0;
}
