/**
 * @file
 * Bring-your-own-accelerator example: how a user describes a NEW
 * heterogeneous architecture to HotTiles (§VI-B lists the required
 * traits), calibrates its vis_lat parameters with profiling runs, and
 * partitions a matrix for it.
 *
 * The custom design: a "DSA-style" platform — many simple in-order
 * demand cores (cold) next to a wide streaming engine with a scratchpad
 * (hot), sharing 100 GB/s — loosely the CPU+DSA future-work target of
 * §X.  It also demonstrates the gSpMM semiring knob (tropical kernel).
 */

#include <iostream>

#include "common/table.hpp"
#include "core/calibrate.hpp"
#include "core/execution.hpp"
#include "core/gspmm.hpp"
#include "sparse/generators.hpp"

using namespace hottiles;

namespace {

Architecture
makeCustomDsa()
{
    Architecture a;
    a.name = "CPU+DSA (custom)";
    a.freq_ghz = 1.2;
    a.mem_gbps = 100.0;
    a.mem_latency = 120;
    a.tile_height = 256;
    a.tile_width = 256;
    a.atomic_rmw = false;  // the two sides merge private buffers

    // Cold: 8 in-order cores, on-demand accesses, small caches.
    a.cold.name = "scalar core";
    a.cold.role = WorkerRole::Cold;
    a.cold.count = 8;
    a.cold.macs_per_cycle = 0.5;
    a.cold.format = SparseFormat::CsrLike;
    a.cold.din_reuse = ReuseType::None;
    a.cold.dout_reuse = ReuseType::InterTile;
    a.cold.traversal = TraversalOrder::UntiledRowMajor;
    a.cold.overlap_group = {0, 0, 0, 0, 0};
    a.cold_pe.depth = 6;
    a.cold_pe.segment_nnz = 16;
    a.cold_pe.l1_bytes = 2 * kKiB;
    a.cold_pe.port_bytes_per_cycle = 12;

    // Hot: one wide streaming DSA with a 64 KiB scratchpad.
    a.hot.name = "DSA stream engine";
    a.hot.role = WorkerRole::Hot;
    a.hot.count = 1;
    a.hot.macs_per_cycle = 12.0;
    a.hot.format = SparseFormat::CsrLike;
    a.hot.din_reuse = ReuseType::IntraTileStream;
    a.hot.dout_reuse = ReuseType::IntraTileDemand;
    a.hot.traversal = TraversalOrder::TiledRowMajor;
    a.hot.scratchpad_bytes = 64 * kKiB;
    a.hot.overlap_group = {0, 1, 1, 1, 1};  // in-order descriptor issue
    a.hot_pe.depth = 2;
    a.hot_pe.tile_overhead_cycles = 32;
    a.hot_pe.port_bytes_per_cycle = 48;
    return a;
}

} // namespace

int
main()
{
    // 1. Describe and calibrate the platform (profiling runs, §VI-B).
    Architecture arch = makeCustomDsa();
    ArchCalibration cal = calibrateArchitecture(arch);
    std::cout << "calibrated " << arch.name
              << ": hot vis_lat=" << arch.hot.vis_lat << " (err "
              << Table::num(100 * cal.hot_error, 1) << "%), cold vis_lat="
              << arch.cold.vis_lat << " (err "
              << Table::num(100 * cal.cold_error, 1) << "%)\n\n";

    // 2. A workload with strong IMH and a tropical gSpMM kernel.
    CooMatrix m = genCommunity(16384, 40.0, 64, 256, 0.8, 0xD5A);
    Semiring semiring = tropicalSemiring();
    HotTilesOptions opts;
    opts.kernel = kernelFor(semiring);
    std::cout << "workload: " << m.rows() << "^2 matrix, " << m.nnz()
              << " nonzeros; kernel: " << semiring.name << "\n";

    // 3. Partition and compare all execution strategies.
    MatrixEvaluation ev = evaluateMatrix(arch, m, "custom", opts);
    Table t({"Strategy", "Cycles", "Speedup vs worst homog."});
    auto row = [&](const char* name, const StrategyOutcome& o) {
        t.addRow({name, Table::num(o.cycles(), 0),
                  Table::num(ev.speedupOverWorst(o), 2)});
    };
    row("HotOnly", ev.hot_only);
    row("ColdOnly", ev.cold_only);
    row("IUnaware", ev.iunaware);
    row("HotTiles", ev.hottiles);
    t.print(std::cout);
    std::cout << "\nHotTiles chose " << ev.hottiles.partition.heuristic
              << (ev.hottiles.partition.serial ? " (serial)" : " (parallel)")
              << " and beats the best homogeneous strategy by "
              << Table::num(ev.bestHomogeneousCycles() /
                                ev.hottiles.cycles(), 2)
              << "x on this platform.\n";
    return 0;
}
