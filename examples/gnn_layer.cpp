/**
 * @file
 * GNN aggregation example: SpMM is the core of graph-neural-network
 * message passing (H' = A x H).  This example mirrors the paper's GNN
 * motivation (§I, §VI-B): the HotTiles preprocessing is done ONCE on the
 * graph adjacency matrix and then amortized across layers and epochs —
 * "generated and used during GNN training and then saved and reused
 * during GNN inference".
 *
 * It runs a 3-layer aggregation pipeline on a power-law social graph,
 * checks the result against the reference kernel, and reports how the
 * one-time preprocessing compares to the recurring per-layer gains.
 */

#include <cmath>
#include <iostream>

#include "common/random.hpp"
#include "common/table.hpp"
#include "core/calibrate.hpp"
#include "core/hottiles.hpp"
#include "sim/simulator.hpp"
#include "sparse/dense.hpp"
#include "sparse/generators.hpp"

using namespace hottiles;

int
main()
{
    // A citation-network-like graph (the classic GNN benchmark class):
    // dense communities of mutually-citing papers over a power-law
    // background — strong intra-matrix heterogeneity.
    const Index nodes = 16384;
    CooMatrix adjacency = genCommunity(nodes, 55.0, 64, 256, 0.8, 0x6E6E);
    std::cout << "graph: " << nodes << " nodes, " << adjacency.nnz()
              << " edges\n";

    Architecture arch = calibrated(makeSpadeSextans(4));

    // One-time preprocessing: tile, model, partition, build formats.
    HotTiles ht(arch, adjacency);
    std::cout << "preprocessing: " << ht.timing().total() * 1e3
              << " ms on the host; partition = " << ht.partition().heuristic
              << ", " << 100.0 * ht.partition().hotNnzFraction(ht.grid())
              << "% of edges on hot workers\n\n";

    // Feature matrix: K = 32 features per node.
    DenseMatrix features(nodes, 32);
    Rng rng(0x6E6E);
    features.fillRandom(rng);

    // Run 3 aggregation layers, reusing the partition every layer.
    const int layers = 3;
    Table t({"Layer", "HotTiles (ms)", "ColdOnly (ms)", "Saved (ms)"});
    double total_saved_ms = 0;
    DenseMatrix h = features;
    for (int layer = 0; layer < layers; ++layer) {
        SimConfig cfg;
        cfg.compute_values = true;
        cfg.din = &h;
        SimOutput out =
            simulateExecution(arch, ht.grid(), ht.partition().is_hot,
                              ht.partition().serial, ht.kernel(), cfg);
        SimOutput cold = simulateHomogeneous(arch, ht.grid(), false,
                                             ht.kernel());
        // Validate the aggregation against the reference kernel.
        DenseMatrix ref = referenceSpmm(adjacency, h);
        if (!out.dout.approxEqual(ref, 1e-3)) {
            std::cerr << "layer " << layer << ": aggregation mismatch!\n";
            return 1;
        }
        double saved = cold.stats.ms - out.stats.ms;
        total_saved_ms += saved;
        t.addRow({std::to_string(layer), Table::num(out.stats.ms, 3),
                  Table::num(cold.stats.ms, 3), Table::num(saved, 3)});
        h = std::move(out.dout);  // next layer consumes this layer's output
        // Feature normalization (as GNN layers do) keeps the magnitudes
        // bounded across layers.
        double max_abs = 1e-6;
        for (Index r = 0; r < h.rows(); ++r)
            for (Index c = 0; c < h.cols(); ++c)
                max_abs = std::max(max_abs, double(std::abs(h.at(r, c))));
        for (Index r = 0; r < h.rows(); ++r)
            for (Index c = 0; c < h.cols(); ++c)
                h.at(r, c) = Value(h.at(r, c) / max_abs);
    }
    t.print(std::cout);

    std::cout << "\naccelerator time saved per epoch: " << total_saved_ms
              << " ms; host preprocessing (one-time): "
              << ht.timing().total() * 1e3 << " ms\n"
              << "The preprocessing is amortized across layers, epochs, "
                 "and inference runs.\n";
    return 0;
}
