/**
 * @file
 * Fig 4 reproduction: compare the IMH-unaware heterogeneous baseline
 * (IUnaware) against homogeneous HotOnly/ColdOnly execution on
 * SPADE-Sextans (16 cold workers, 1 hot worker) and PIUMA (4 cold,
 * 2 hot).  Bars = speedup over the worst homogeneous execution; the
 * paper's takeaway is that IUnaware always beats the worst homogeneous
 * run but is unimpressive against the best one (notably on
 * SPADE-Sextans, where it loses to ColdOnly).
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

using namespace hottiles;
using namespace hottiles::bench;

namespace {

void
runArch(const std::string& label, Architecture arch)
{
    calibrateArchitecture(arch);
    auto evs = evaluateSuite(arch, tableVNames());

    Table t({"Matrix", "HotOnly", "ColdOnly", "IUnaware",
             "IUnaware vs best homog."});
    GeoMean iu_vs_best;
    for (const auto& ev : evs) {
        double vs_best =
            speedup(ev.bestHomogeneousCycles(), ev.iunaware.cycles());
        iu_vs_best.add(vs_best);
        t.addRow({ev.matrix, Table::num(ev.speedupOverWorst(ev.hot_only), 2),
                  Table::num(ev.speedupOverWorst(ev.cold_only), 2),
                  Table::num(ev.speedupOverWorst(ev.iunaware), 2),
                  Table::num(vs_best, 2)});
    }
    std::cout << "\n" << label
              << " — speedup over the worst homogeneous execution:\n";
    t.print(std::cout);
    std::cout << "geomean IUnaware speedup vs BEST homogeneous: "
              << Table::num(iu_vs_best.value(), 2)
              << "  (paper: ~<1 on SPADE-Sextans, ~1 on PIUMA)\n";
}

} // namespace

int
main(int argc, char** argv)
{
    init(&argc, argv);
    banner("Figure 4", "HPCA'24 HotTiles, Fig 4",
           "IUnaware heterogeneous execution vs homogeneous execution");
    runArch("SPADE-Sextans (Ncw=16, Nhw=1)", makeSpadeSextans(4));
    runArch("PIUMA (Ncw=4, Nhw=2)", makePiuma());
    return 0;
}
