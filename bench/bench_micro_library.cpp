/**
 * @file
 * google-benchmark micro-benchmarks for the library's building blocks:
 * tiling throughput, per-tile model evaluation, the O(N log N)
 * partitioning heuristics (demonstrating their scaling), cache lookups,
 * and the event queue.  These back the paper's preprocessing-cost
 * claims (§V-B, §VIII-C) at the component level.
 */

#include <algorithm>

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "common/random.hpp"
#include "common/units.hpp"
#include "kernels/dispatch.hpp"
#include "model/time_model.hpp"
#include "partition/heuristics.hpp"
#include "sim/cache.hpp"
#include "sim/event_queue.hpp"
#include "sim/memory_system.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "sparse/generators.hpp"
#include "sparse/tiling.hpp"

using namespace hottiles;

namespace {

const CooMatrix&
benchMatrix()
{
    static CooMatrix m =
        bench::smokeMode()
            ? genRmat(2048, 20000, 0.57, 0.19, 0.19, 0.05, 0xBEEF)
            : genRmat(16384, 500000, 0.57, 0.19, 0.19, 0.05, 0xBEEF);
    return m;
}

WorkerTraits
hotTraits()
{
    WorkerTraits w;
    w.role = WorkerRole::Hot;
    w.macs_per_cycle = 20.0;
    w.din_reuse = ReuseType::IntraTileStream;
    w.dout_reuse = ReuseType::InterTile;
    w.traversal = TraversalOrder::TiledRowMajor;
    w.vis_lat = 0.01;
    return w;
}

WorkerTraits
coldTraits()
{
    WorkerTraits w;
    w.role = WorkerRole::Cold;
    w.count = 16;
    w.macs_per_cycle = 1.0;
    w.din_reuse = ReuseType::None;
    w.dout_reuse = ReuseType::InterTile;
    w.vis_lat = 0.05;
    return w;
}

void
BM_TilingScan(benchmark::State& state)
{
    const CooMatrix& m = benchMatrix();
    auto tile = static_cast<Index>(state.range(0));
    for (auto _ : state) {
        TileGrid grid(m, tile, tile);
        benchmark::DoNotOptimize(grid.numTiles());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * m.nnz());
}
BENCHMARK(BM_TilingScan)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void
BM_ModelEstimation(benchmark::State& state)
{
    const CooMatrix& m = benchMatrix();
    TileGrid grid(m, 256, 256);
    WorkerTraits hot = hotTraits();
    WorkerTraits cold = coldTraits();
    for (auto _ : state) {
        PartitionContext ctx = makePartitionContext(
            grid, hot, cold, KernelConfig{}, 256.0, 0.0, false);
        benchmark::DoNotOptimize(ctx.estimates.size());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * grid.numTiles());
}
BENCHMARK(BM_ModelEstimation)->Unit(benchmark::kMillisecond);

void
BM_HeuristicPartitioning(benchmark::State& state)
{
    // Scaling of the N log N cutoff heuristics with the tile count.
    auto rows = static_cast<Index>(state.range(0));
    if (bench::smokeMode())
        rows = std::min<Index>(rows, 2048);
    CooMatrix m = genRmat(rows, size_t(rows) * 30, 0.57, 0.19, 0.19, 0.05,
                          0xFEED);
    TileGrid grid(m, 128, 128);
    WorkerTraits hot = hotTraits();
    WorkerTraits cold = coldTraits();
    PartitionContext ctx = makePartitionContext(grid, hot, cold,
                                                KernelConfig{}, 256.0,
                                                1000.0, false);
    for (auto _ : state) {
        Partition p = hotTilesPartition(ctx);
        benchmark::DoNotOptimize(p.predicted_cycles);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * grid.numTiles());
    state.counters["tiles"] = double(grid.numTiles());
}
BENCHMARK(BM_HeuristicPartitioning)->Arg(2048)->Arg(8192)->Arg(32768)
    ->Unit(benchmark::kMillisecond);

void
BM_CacheAccess(benchmark::State& state)
{
    Cache cache(32 * kKiB, 8);
    Rng rng(1);
    std::vector<uint64_t> lines(4096);
    for (auto& l : lines)
        l = rng.nextBounded(2048);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(lines[i % lines.size()]));
        ++i;
    }
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_CacheAccess);

void
BM_EventQueueThroughput(benchmark::State& state)
{
    for (auto _ : state) {
        EventQueue eq;
        int fired = 0;
        for (Tick t = 0; t < 10000; ++t)
            eq.schedule(t, [&fired] { ++fired; });
        eq.runUntilEmpty();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 10000);
}
BENCHMARK(BM_EventQueueThroughput)->Unit(benchmark::kMillisecond);

// -- Kernel library micro-benchmarks (docs/KERNELS.md).  state.range(0)
// -- selects the dispatch tier index in kernels::supportedTiers(), so
// -- one binary reports every tier the host can run; items/sec counts
// -- scalar MAC flops.

struct KernelFixture
{
    Index k = 32;  // before din/dout: members initialize in this order
    CooMatrix coo;
    CsrMatrix csr;
    DenseMatrix din;
    DenseMatrix dout;

    KernelFixture()
        : coo([] {
              CooMatrix m = bench::smokeMode()
                                ? genUniform(512, 512, 8192, 0xC0FFEE)
                                : genUniform(4096, 4096, 200000, 0xC0FFEE);
              m.sortRowMajor();
              return m;
          }()),
          csr(CsrMatrix::fromCoo(coo)), din(coo.cols(), k),
          dout(coo.rows(), k)
    {
        Rng rng(0xAB1E);
        din.fillRandom(rng);
        dout.fill(0);
    }

    static KernelFixture& get()
    {
        static KernelFixture f;
        return f;
    }
    kernels::CsrView csrView() const
    {
        return {csr.rowPtr().data(), csr.colIds().data(),
                csr.values().data(), csr.rows()};
    }
    kernels::CooView cooView() const
    {
        return {coo.rowIds().data(), coo.colIds().data(),
                coo.values().data(), coo.nnz()};
    }
};

/** One Arg per supported dispatch tier (index into supportedTiers()). */
void
TierArgs(benchmark::internal::Benchmark* b)
{
    const auto tiers = kernels::supportedTiers();
    for (size_t i = 0; i < tiers.size(); ++i)
        b->Arg(int64_t(i));
}

const kernels::KernelOps&
tierOps(benchmark::State& state)
{
    const auto tiers = kernels::supportedTiers();
    const kernels::Tier t = tiers.at(size_t(state.range(0)));
    state.SetLabel(kernels::tierName(t));
    return kernels::opsForTier(t);
}

void
BM_KernelSpmmCsrFast(benchmark::State& state)
{
    KernelFixture& f = KernelFixture::get();
    const kernels::KernelOps& ops = tierOps(state);
    for (auto _ : state)
        ops.spmm_csr_fast(f.csrView(), f.k, f.din.row(0), f.dout.row(0),
                          0, f.csr.rows());
    state.SetItemsProcessed(int64_t(state.iterations()) * 2 *
                            int64_t(f.coo.nnz()) * f.k);
}
BENCHMARK(BM_KernelSpmmCsrFast)->Apply(TierArgs)
    ->Unit(benchmark::kMillisecond);

void
BM_KernelSpmmCsrGolden(benchmark::State& state)
{
    KernelFixture& f = KernelFixture::get();
    const kernels::KernelOps& ops = tierOps(state);
    for (auto _ : state)
        ops.spmm_csr_golden(f.csrView(), f.k, f.din.row(0), f.dout.row(0),
                            0, f.csr.rows());
    state.SetItemsProcessed(int64_t(state.iterations()) * 2 *
                            int64_t(f.coo.nnz()) * f.k);
}
BENCHMARK(BM_KernelSpmmCsrGolden)->Apply(TierArgs)
    ->Unit(benchmark::kMillisecond);

void
BM_KernelSpmvCsrFast(benchmark::State& state)
{
    KernelFixture& f = KernelFixture::get();
    const kernels::KernelOps& ops = tierOps(state);
    std::vector<Value> x(f.coo.cols(), Value(0.5));
    std::vector<Value> y(f.coo.rows());
    for (auto _ : state)
        ops.spmv_csr_fast(f.csrView(), x.data(), y.data(), 0,
                          f.csr.rows());
    state.SetItemsProcessed(int64_t(state.iterations()) * 2 *
                            int64_t(f.coo.nnz()));
}
BENCHMARK(BM_KernelSpmvCsrFast)->Apply(TierArgs);

void
BM_KernelSddmmFast(benchmark::State& state)
{
    KernelFixture& f = KernelFixture::get();
    const kernels::KernelOps& ops = tierOps(state);
    Rng rng(0xF00D);
    DenseMatrix u(f.coo.rows(), f.k);
    u.fillRandom(rng);
    std::vector<Value> out(f.coo.nnz());
    for (auto _ : state)
        ops.sddmm_fast(f.cooView(), f.k, u.row(0), f.din.row(0),
                       out.data(), 0, f.coo.nnz());
    state.SetItemsProcessed(int64_t(state.iterations()) * 2 *
                            int64_t(f.coo.nnz()) * f.k);
}
BENCHMARK(BM_KernelSddmmFast)->Apply(TierArgs)
    ->Unit(benchmark::kMillisecond);

void
BM_MemorySystemContention(benchmark::State& state)
{
    for (auto _ : state) {
        EventQueue eq;
        MemorySystem mem(eq, 256.0, 80);
        for (int i = 0; i < 5000; ++i)
            mem.access(4, i % 4 == 0, {});
        eq.runUntilEmpty();
        benchmark::DoNotOptimize(mem.linesTotal());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 5000);
}
BENCHMARK(BM_MemorySystemContention)->Unit(benchmark::kMillisecond);

} // namespace

// Hand-rolled main: the shared bench flags (--smoke/--threads) must be
// stripped before benchmark::Initialize, which rejects unknown flags.
int
main(int argc, char** argv)
{
    hottiles::bench::init(&argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
