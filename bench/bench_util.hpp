#pragma once

/**
 * @file
 * Shared harness for the figure/table reproduction benches: suite matrix
 * caching, strategy sweeps over the Table V / Table VIII sets, speedup
 * arithmetic, and the uniform headings each binary prints.
 */

#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "core/calibrate.hpp"
#include "core/execution.hpp"
#include "sparse/suite.hpp"
#include "sparse/tiling.hpp"

namespace hottiles::bench {

/**
 * Parse the shared bench flags and strip them from argv (so wrapped
 * argument parsers like google-benchmark never see them):
 *   --smoke       tiny-synthetic-matrix mode for CI: every suite name
 *                 resolves to one small deterministic matrix so each
 *                 binary exercises its full code path in seconds.
 *   --threads N   thread-pool size (same as the CLI flag).
 * Call first thing in main().
 */
void init(int* argc, char** argv);

/** True when --smoke was passed (benches may trim their sweeps). */
bool smokeMode();

/** Print the standard experiment banner. */
void banner(const std::string& experiment, const std::string& paper_ref,
            const std::string& description);

/** Matrix names of Table V (or a subset from HT_BENCH_MATRICES). */
std::vector<std::string> tableVNames();

/** Matrix names of Table VIII. */
std::vector<std::string> tableVIIINames();

/** Process-cached suite matrix (generated once per binary). */
const CooMatrix& suiteMatrix(const std::string& name);

/** Process-cached tile grid for a suite matrix at the given tile size. */
const TileGrid& suiteGrid(const std::string& name, Index tile_h,
                          Index tile_w);

/** Evaluate every strategy for each named matrix under @p arch. */
std::vector<MatrixEvaluation> evaluateSuite(
    const Architecture& arch, const std::vector<std::string>& names,
    const HotTilesOptions& opts = {});

/** Geometric mean of f(ev) over evaluations. */
double geomeanOver(const std::vector<MatrixEvaluation>& evs,
                   const std::function<double(const MatrixEvaluation&)>& f);

/** Speedup of a/b guarded against zero. */
double speedup(double baseline_cycles, double cycles);

} // namespace hottiles::bench
