/**
 * @file
 * Ablation (§X future work, citing Arai et al.): heterogeneity-aware
 * reordering.  Degree-descending reordering concentrates dense rows
 * into the same row panels, sharpening IMH and helping the partitioner;
 * a random permutation destroys IMH and is the "structure removed"
 * control — with it, HotTiles should degrade toward IUnaware-like
 * gains, demonstrating that the wins really come from exploiting IMH.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sparse/reorder.hpp"
#include "sparse/tiling.hpp"

using namespace hottiles;
using namespace hottiles::bench;

int
main(int argc, char** argv)
{
    init(&argc, argv);
    banner("Ablation: reordering", "HPCA'24 HotTiles, §X",
           "Original vs degree-sorted vs randomly-permuted matrices");

    Architecture arch = calibrated(makeSpadeSextans(4));
    std::vector<std::string> names = {"ski", "pap", "kro", "pok", "wik"};

    Table t({"Matrix", "IMH CV orig", "CV degree-sorted", "CV shuffled",
             "HT vs BestHom orig", "degree-sorted", "shuffled"});
    GeoMean g_orig;
    GeoMean g_sorted;
    GeoMean g_shuffled;
    for (const auto& name : names) {
        const CooMatrix& m = suiteMatrix(name);
        CooMatrix sorted = m.permutedSymmetric(
            degreeDescendingPermutation(m));
        CooMatrix shuffled =
            m.permutedSymmetric(randomPermutation(m.rows(), 0x5EED));

        auto quality = [&](const CooMatrix& mm, double& cv) {
            TileGrid grid(mm, arch.tile_height, arch.tile_width);
            cv = grid.tileNnzCv();
            MatrixEvaluation ev = evaluateMatrix(arch, mm, name);
            return ev.bestHomogeneousCycles() / ev.hottiles.cycles();
        };
        double cv_o;
        double cv_s;
        double cv_r;
        double q_o = quality(m, cv_o);
        double q_s = quality(sorted, cv_s);
        double q_r = quality(shuffled, cv_r);
        g_orig.add(q_o);
        g_sorted.add(q_s);
        g_shuffled.add(q_r);
        t.addRow({name, Table::num(cv_o, 2), Table::num(cv_s, 2),
                  Table::num(cv_r, 2), Table::num(q_o, 2),
                  Table::num(q_s, 2), Table::num(q_r, 2)});
    }
    t.print(std::cout);
    std::cout << "\ngeomean HotTiles speedup vs BestHomogeneous: original "
              << Table::num(g_orig.value(), 2) << "x, degree-sorted "
              << Table::num(g_sorted.value(), 2) << "x, shuffled "
              << Table::num(g_shuffled.value(), 2)
              << "x\n(shuffling destroys IMH; the gains track the tile-nnz "
                 "CV, confirming the mechanism)\n";
    return 0;
}
