/**
 * @file
 * Table VII reproduction: architecture utilization statistics for
 * SPADE-Sextans system scales 1 and 4 — memory bandwidth utilization,
 * cache lines accessed from memory per nonzero, and the non-idle
 * GFLOP/s of the SPADE (cold) and Sextans (hot) computational units —
 * per strategy, geomean across the Table V matrices.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

using namespace hottiles;
using namespace hottiles::bench;

namespace {

struct Agg
{
    GeoMean bw;
    GeoMean lines_per_nnz;
    Summary spade_gflops;   // arithmetic mean: zeros are meaningful
    Summary sextans_gflops;

    void
    add(const SimStats& s)
    {
        bw.add(s.avg_bw_gbps);
        lines_per_nnz.add(s.lines_per_nnz);
        spade_gflops.add(s.cold_gflops);
        sextans_gflops.add(s.hot_gflops);
    }
};

void
runScale(int scale)
{
    Architecture arch = calibrated(makeSpadeSextans(scale));
    auto evs = evaluateSuite(arch, tableVNames());

    Agg agg[4];  // HotOnly, ColdOnly, IUnaware, HotTiles
    for (const auto& ev : evs) {
        agg[0].add(ev.hot_only.stats);
        agg[1].add(ev.cold_only.stats);
        agg[2].add(ev.iunaware.stats);
        agg[3].add(ev.hottiles.stats);
    }

    Table t({"Measure (geomean)", "HotOnly", "ColdOnly", "IUnaware",
             "HotTiles"});
    auto row = [&](const char* name,
                   const std::function<double(const Agg&)>& f, int digits) {
        t.addRow({name, Table::num(f(agg[0]), digits),
                  Table::num(f(agg[1]), digits),
                  Table::num(f(agg[2]), digits),
                  Table::num(f(agg[3]), digits)});
    };
    row("Bandwidth util. (GB/s)", [](const Agg& a) { return a.bw.value(); },
        2);
    row("Lines from memory per nonzero",
        [](const Agg& a) { return a.lines_per_nnz.value(); }, 2);
    row("SPADE GFLOP/s",
        [](const Agg& a) { return a.spade_gflops.mean(); }, 2);
    row("Sextans GFLOP/s",
        [](const Agg& a) { return a.sextans_gflops.mean(); }, 2);
    std::cout << "\nSystem scale " << scale << ":\n";
    t.print(std::cout);
}

} // namespace

int
main(int argc, char** argv)
{
    init(&argc, argv);
    banner("Table VII", "HPCA'24 HotTiles, Table VII",
           "Architecture utilization statistics for SPADE-Sextans");
    runScale(1);
    runScale(4);
    std::cout << "\n(paper scale 1: BW 27.96/49.68/49.04/67.41 GB/s, "
                 "lines/nnz 6.78/1.59/2.27/1.47,\n SPADE GFLOP/s "
                 "0/48.7/46.5/43.5, Sextans GFLOP/s 6.4/0/4.9/51.1;\n"
                 " paper scale 4: BW 82.6/132.3/127.0/124.7, lines/nnz "
                 "3.13/1.60/1.99/1.02)\n";
    return 0;
}
