/**
 * @file
 * Fig 15 / Table VIII reproduction: the five higher-density matrices
 * (gea, mou, nd2, rm0, si4) on SPADE-Sextans at system scales 1 and 4.
 * These matrices mostly favor the HOT workers, inverting the Table V
 * picture.  Paper averages across both scales: 1.5x vs HotOnly, 3.8x vs
 * ColdOnly, 1.4x vs IUnaware, 1.5x vs BestHomogeneous.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

using namespace hottiles;
using namespace hottiles::bench;

int
main(int argc, char** argv)
{
    init(&argc, argv);
    banner("Figure 15 / Table VIII", "HPCA'24 HotTiles, Fig 15",
           "Higher-density matrix set on SPADE-Sextans scales 1 and 4");

    GeoMean vs_hot_all;
    GeoMean vs_cold_all;
    GeoMean vs_iu_all;
    GeoMean vs_best_all;
    for (int scale : {1, 4}) {
        Architecture arch = calibrated(makeSpadeSextans(scale));
        auto evs = evaluateSuite(arch, tableVIIINames());

        Table t({"Matrix", "HotOnly", "ColdOnly", "IUnaware", "HotTiles"});
        for (const auto& ev : evs) {
            double worst = ev.worstHomogeneousCycles();
            double ht = ev.hottiles.cycles();
            vs_hot_all.add(ev.hot_only.cycles() / ht);
            vs_cold_all.add(ev.cold_only.cycles() / ht);
            vs_iu_all.add(ev.iunaware.cycles() / ht);
            vs_best_all.add(ev.bestHomogeneousCycles() / ht);
            t.addRow({ev.matrix, Table::num(worst / ev.hot_only.cycles(), 2),
                      Table::num(worst / ev.cold_only.cycles(), 2),
                      Table::num(worst / ev.iunaware.cycles(), 2),
                      Table::num(worst / ht, 2)});
        }
        std::cout << "\nScale " << scale
                  << " — speedup over the worst homogeneous execution:\n";
        t.print(std::cout);
    }
    std::cout << "\naverages across both scales: vs HotOnly "
              << Table::num(vs_hot_all.value(), 2) << "x (paper 1.5x), "
              << "vs ColdOnly " << Table::num(vs_cold_all.value(), 2)
              << "x (paper 3.8x),\n vs IUnaware "
              << Table::num(vs_iu_all.value(), 2) << "x (paper 1.4x), "
              << "vs BestHom " << Table::num(vs_best_all.value(), 2)
              << "x (paper 1.5x)\n";
    return 0;
}
