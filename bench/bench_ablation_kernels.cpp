/**
 * @file
 * Ablation (§X future work): HotTiles applied to SpMV and SDDMM, which
 * share SpMM's access pattern.  For a subset of the Table V matrices we
 * compare HotTiles against the baselines under all three kernels on
 * SPADE-Sextans scale 4.  Expected shape: the same hot/cold structure
 * drives all three; SpMV is even more memory-bound (speedups vs HotOnly
 * grow), SDDMM removes the output write-backs and the Merger.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

using namespace hottiles;
using namespace hottiles::bench;

int
main(int argc, char** argv)
{
    init(&argc, argv);
    banner("Ablation: kernels", "HPCA'24 HotTiles, §X",
           "HotTiles on SpMM / SpMV / SDDMM (SPADE-Sextans scale 4)");

    Architecture arch = calibrated(makeSpadeSextans(4));
    struct KernelRow
    {
        const char* name;
        KernelConfig kc;
    };
    std::vector<KernelRow> kernels = {
        {"SpMM (K=32)", KernelConfig{}},
        {"SpMV", spmvKernel()},
        {"SDDMM (K=32)", sddmmKernel(32)},
    };
    std::vector<std::string> names = {"ski", "pap", "kro", "myc", "pok"};

    Table t({"Kernel", "vs HotOnly", "vs ColdOnly", "vs IUnaware",
             "vs BestHom"});
    t.setAlign(0, Table::Align::Left);
    for (const auto& kr : kernels) {
        HotTilesOptions opts;
        opts.kernel = kr.kc;
        opts.build_formats = false;
        GeoMean vs_hot;
        GeoMean vs_cold;
        GeoMean vs_iu;
        GeoMean vs_best;
        for (const auto& name : names) {
            MatrixEvaluation ev =
                evaluateMatrix(arch, suiteMatrix(name), name, opts);
            double ht = ev.hottiles.cycles();
            vs_hot.add(ev.hot_only.cycles() / ht);
            vs_cold.add(ev.cold_only.cycles() / ht);
            vs_iu.add(ev.iunaware.cycles() / ht);
            vs_best.add(ev.bestHomogeneousCycles() / ht);
        }
        t.addRow({kr.name, Table::num(vs_hot.value(), 2),
                  Table::num(vs_cold.value(), 2),
                  Table::num(vs_iu.value(), 2),
                  Table::num(vs_best.value(), 2)});
    }
    t.print(std::cout);
    std::cout << "\nGeomean HotTiles speedups over "
              << names.size() << " matrices; the partitioning structure "
                 "transfers across kernels (§X).\n";
    return 0;
}
