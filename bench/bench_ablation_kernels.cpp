/**
 * @file
 * Ablation (§X future work): HotTiles applied to SpMV and SDDMM, which
 * share SpMM's access pattern.  For a subset of the Table V matrices we
 * compare HotTiles against the baselines under all three kernels on
 * SPADE-Sextans scale 4.  Expected shape: the same hot/cold structure
 * drives all three; SpMV is even more memory-bound (speedups vs HotOnly
 * grow), SDDMM removes the output write-backs and the Merger.
 *
 * A second table reports what the *host* kernel library (docs/KERNELS.md)
 * achieves on the same three kernels — GFLOP/s of the fast-policy
 * micro-kernels on the active dispatch tier vs the forced-scalar tier —
 * grounding the modeled accelerator numbers in measured host arithmetic.
 */

#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "common/random.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "kernels/dispatch.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "sparse/generators.hpp"

using namespace hottiles;
using namespace hottiles::bench;

namespace {

/** GFLOP/s of @p call (called repeatedly for ~20ms after warm-up). */
template <class F>
double
measureGflops(double flops_per_call, F&& call)
{
    const double min_ms = smokeMode() ? 4.0 : 20.0;
    call();  // warm-up
    int reps = 0;
    double ms = 0;
    const auto t0 = std::chrono::steady_clock::now();
    do {
        call();
        ++reps;
        ms = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - t0)
                 .count();
    } while (ms < min_ms && reps < 100000);
    return flops_per_call * reps / (ms / 1e3) / 1e9;
}

/** Host kernel library GFLOP/s: active tier vs forced-scalar, K=32. */
void
printHostKernelTable()
{
    const Index k = 32;
    CooMatrix coo = smokeMode() ? genUniform(512, 512, 8192, 0xC0FFEE)
                                : genUniform(4096, 4096, 200000, 0xC0FFEE);
    coo.sortRowMajor();
    const CsrMatrix csr = CsrMatrix::fromCoo(coo);
    const kernels::CsrView cv{csr.rowPtr().data(), csr.colIds().data(),
                              csr.values().data(), csr.rows()};
    const kernels::CooView ov{coo.rowIds().data(), coo.colIds().data(),
                              coo.values().data(), coo.nnz()};
    Rng rng(0xAB1E);
    DenseMatrix din(coo.cols(), k);
    DenseMatrix u(coo.rows(), k);
    din.fillRandom(rng);
    u.fillRandom(rng);
    DenseMatrix dout(coo.rows(), k);
    dout.fill(0);
    std::vector<Value> x(coo.cols(), Value(0.5));
    std::vector<Value> y(coo.rows());
    std::vector<Value> sout(coo.nnz());
    const double mac_flops = 2.0 * double(coo.nnz()) * k;

    Table t({"Host kernel (fast policy)",
             std::string(kernels::tierName(kernels::activeTier())) +
                 " GF/s",
             "scalar GF/s", "speedup"});
    t.setAlign(0, Table::Align::Left);
    const kernels::KernelOps& act =
        kernels::opsForTier(kernels::activeTier());
    const kernels::KernelOps& sca =
        kernels::opsForTier(kernels::Tier::Scalar);
    auto row = [&](const char* name, double flops, auto&& run) {
        const double a = measureGflops(flops, [&] { run(act); });
        const double s = measureGflops(flops, [&] { run(sca); });
        t.addRow({name, Table::num(a, 2), Table::num(s, 2),
                  Table::num(s > 0 ? a / s : 0, 2) + "x"});
    };
    row("SpMM CSR (K=32)", mac_flops, [&](const kernels::KernelOps& o) {
        o.spmm_csr_fast(cv, k, din.row(0), dout.row(0), 0, csr.rows());
    });
    row("SpMV CSR", 2.0 * double(coo.nnz()),
        [&](const kernels::KernelOps& o) {
            o.spmv_csr_fast(cv, x.data(), y.data(), 0, csr.rows());
        });
    row("SDDMM (K=32)", mac_flops, [&](const kernels::KernelOps& o) {
        o.sddmm_fast(ov, k, u.row(0), din.row(0), sout.data(), 0,
                     coo.nnz());
    });
    std::cout << "\n";
    t.print(std::cout);
    std::cout << "Host micro-kernel throughput, single-threaded "
                 "(bench_kernel_throughput has the full tier x K "
                 "sweep).\n";
}

} // namespace

int
main(int argc, char** argv)
{
    init(&argc, argv);
    banner("Ablation: kernels", "HPCA'24 HotTiles, §X",
           "HotTiles on SpMM / SpMV / SDDMM (SPADE-Sextans scale 4)");

    Architecture arch = calibrated(makeSpadeSextans(4));
    struct KernelRow
    {
        const char* name;
        KernelConfig kc;
    };
    std::vector<KernelRow> kernels = {
        {"SpMM (K=32)", KernelConfig{}},
        {"SpMV", spmvKernel()},
        {"SDDMM (K=32)", sddmmKernel(32)},
    };
    std::vector<std::string> names = {"ski", "pap", "kro", "myc", "pok"};

    Table t({"Kernel", "vs HotOnly", "vs ColdOnly", "vs IUnaware",
             "vs BestHom"});
    t.setAlign(0, Table::Align::Left);
    for (const auto& kr : kernels) {
        HotTilesOptions opts;
        opts.kernel = kr.kc;
        opts.build_formats = false;
        GeoMean vs_hot;
        GeoMean vs_cold;
        GeoMean vs_iu;
        GeoMean vs_best;
        for (const auto& name : names) {
            MatrixEvaluation ev =
                evaluateMatrix(arch, suiteMatrix(name), name, opts);
            double ht = ev.hottiles.cycles();
            vs_hot.add(ev.hot_only.cycles() / ht);
            vs_cold.add(ev.cold_only.cycles() / ht);
            vs_iu.add(ev.iunaware.cycles() / ht);
            vs_best.add(ev.bestHomogeneousCycles() / ht);
        }
        t.addRow({kr.name, Table::num(vs_hot.value(), 2),
                  Table::num(vs_cold.value(), 2),
                  Table::num(vs_iu.value(), 2),
                  Table::num(vs_best.value(), 2)});
    }
    t.print(std::cout);
    std::cout << "\nGeomean HotTiles speedups over "
              << names.size() << " matrices; the partitioning structure "
                 "transfers across kernels (§X).\n";
    printHostKernelTable();
    return 0;
}
