/**
 * @file
 * Host-kernel throughput harness for the vectorized kernel library
 * (docs/KERNELS.md): GFLOP/s per (matrix, kernel, dispatch tier, K)
 * over the raw per-tier function tables, single-threaded so the numbers
 * measure the micro-kernels and not the pool.  Emits machine-readable
 * BENCH_kernels.json so the repo tracks the SIMD speedups across PRs.
 *
 * The regression gate is machine-independent: absolute GFLOP/s differ
 * per host, but the *ratio* of a vector tier to the genuinely-scalar
 * tier (tier_scalar.cpp is compiled with auto-vectorization off) is a
 * property of the kernels.  --check compares those ratios against a
 * checked-in baseline, and additionally enforces the PR's hard floor:
 * the best vector tier must run fast-policy CSR SpMM at K=32 at a
 * >= --min-spmm-speedup (default 3.0) geomean over the bench matrices.
 * On a scalar-only build/CPU both gates are skipped with a notice.
 *
 * Flags (besides the shared --smoke / --threads):
 *   --out FILE             JSON output path (default BENCH_kernels.json)
 *   --check FILE           compare tier-vs-scalar GFLOP/s ratios against
 *                          a baseline JSON; exit 1 on regression
 *   --tolerance F          allowed relative ratio regression (default 0.40)
 *   --min-spmm-speedup F   hard floor for fast CSR SpMM @ K=32 (default 3.0)
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "bench_util.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/random.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "kernels/dispatch.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "sparse/generators.hpp"

using namespace hottiles;
namespace hk = hottiles::kernels;

namespace {

struct Cell
{
    std::string matrix;
    std::string kernel;
    std::string tier;
    Index k = 0;  //!< 1 for the K-independent SpMV kernels
    double gflops = 0;
    double ms_per_call = 0;
    int reps = 0;
};

/** One bench matrix with its derived forms and dense operands. */
struct Workload
{
    std::string name;
    CooMatrix coo;
    CsrMatrix csr;
};

std::vector<Workload>
makeWorkloads()
{
    // Small enough to stay cache-resident (the kernels, not DRAM, are
    // under test), large enough that a call is microseconds not noise.
    std::vector<Workload> out;
    auto add = [&](const std::string& name, CooMatrix m) {
        m.sortRowMajor();
        Workload w;
        w.name = name;
        w.csr = CsrMatrix::fromCoo(m);
        w.coo = std::move(m);
        out.push_back(std::move(w));
    };
    if (bench::smokeMode()) {
        add("uniform", genUniform(512, 512, 8192, 0xC0FFEE));
        add("rmat", genRmat(512, 8192, 0.57, 0.19, 0.19, 0.05, 0xBEEF));
    } else {
        add("uniform", genUniform(4096, 4096, 200000, 0xC0FFEE));
        add("rmat", genRmat(4096, 200000, 0.57, 0.19, 0.19, 0.05, 0xBEEF));
    }
    return out;
}

hk::CsrView
csrView(const CsrMatrix& m)
{
    return {m.rowPtr().data(), m.colIds().data(), m.values().data(),
            m.rows()};
}

hk::CooView
cooView(const CooMatrix& m)
{
    return {m.rowIds().data(), m.colIds().data(), m.values().data(),
            m.nnz()};
}

/**
 * Time one kernel call: warm-up, then best-of-N repeat-until-budget
 * trials.  Taking the fastest trial (minimum time) is the standard
 * robust throughput estimator — scheduler interference and frequency
 * dips only ever make a trial slower, so the max GFLOP/s across trials
 * is the least-noisy observation.
 */
template <class F>
Cell
timeKernel(const std::string& matrix, const std::string& kernel,
           const std::string& tier, Index k, double flops_per_call, F&& call)
{
    const double min_ms = bench::smokeMode() ? 4.0 : 25.0;
    const int max_reps = bench::smokeMode() ? 512 : 100000;
    const int trials = bench::smokeMode() ? 3 : 2;
    call();  // warm-up
    Cell c;
    c.matrix = matrix;
    c.kernel = kernel;
    c.tier = tier;
    c.k = k;
    for (int trial = 0; trial < trials; ++trial) {
        int reps = 0;
        double ms = 0;
        const auto t0 = std::chrono::steady_clock::now();
        do {
            call();
            ++reps;
            ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
        } while (ms < min_ms && reps < max_reps);
        const double gflops = flops_per_call * reps / (ms / 1e3) / 1e9;
        if (gflops > c.gflops) {
            c.gflops = gflops;
            c.ms_per_call = ms / reps;
            c.reps = reps;
        }
    }
    return c;
}

void
writeJson(const std::string& path, const std::vector<Cell>& cells,
          bool smoke, double spmm_fast_k32_speedup,
          const std::map<std::string, double>& tier_geomeans)
{
    std::ofstream out(path);
    HT_FATAL_IF(!out, "cannot open '", path, "' for writing");
    out << "{\n"
        << "  \"schema\": \"hottiles.bench_kernels.v1\",\n"
        << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
        << "  \"active_tier\": \"" << hk::tierName(hk::activeTier())
        << "\",\n"
        << "  \"spmm_csr_fast_k32_geomean_speedup_vs_scalar\": "
        << spmm_fast_k32_speedup << ",\n"
        << "  \"geomean_gflops_vs_scalar\": {";
    bool first = true;
    for (const auto& [tier, g] : tier_geomeans) {
        out << (first ? "" : ", ") << "\"" << tier << "\": " << g;
        first = false;
    }
    out << "},\n  \"metrics\": ";
    MetricsRegistry::global().writeJson(out);
    out << ",\n  \"results\": [\n";
    for (size_t i = 0; i < cells.size(); ++i) {
        const Cell& c = cells[i];
        out << "    {\"matrix\": \"" << c.matrix << "\", \"kernel\": \""
            << c.kernel << "\", \"tier\": \"" << c.tier
            << "\", \"k\": " << c.k << ", \"gflops\": " << c.gflops
            << ", \"ms_per_call\": " << c.ms_per_call
            << ", \"reps\": " << c.reps << "}"
            << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

// -- Minimal parser for our own baseline JSON (same approach as
// -- bench_sim_perf: no JSON library in the toolchain).

std::string
extractString(const std::string& obj, const std::string& key)
{
    const std::string pat = "\"" + key + "\": \"";
    const size_t p = obj.find(pat);
    HT_FATAL_IF(p == std::string::npos, "baseline JSON misses key ", key);
    const size_t b = p + pat.size();
    return obj.substr(b, obj.find('"', b) - b);
}

double
extractNumber(const std::string& obj, const std::string& key)
{
    const std::string pat = "\"" + key + "\": ";
    const size_t p = obj.find(pat);
    HT_FATAL_IF(p == std::string::npos, "baseline JSON misses key ", key);
    return std::strtod(obj.c_str() + p + pat.size(), nullptr);
}

using CellKey = std::tuple<std::string, std::string, std::string, Index>;

std::map<CellKey, double>
readBaselineGflops(const std::string& path)
{
    std::ifstream in(path);
    HT_FATAL_IF(!in, "cannot open baseline '", path, "'");
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    std::map<CellKey, double> out;
    size_t pos = text.find("\"results\"");
    HT_FATAL_IF(pos == std::string::npos, "baseline JSON has no results");
    while ((pos = text.find('{', pos + 1)) != std::string::npos) {
        const size_t end = text.find('}', pos);
        if (end == std::string::npos)
            break;
        const std::string obj = text.substr(pos, end - pos + 1);
        out[{extractString(obj, "matrix"), extractString(obj, "kernel"),
             extractString(obj, "tier"),
             Index(extractNumber(obj, "k"))}] =
            extractNumber(obj, "gflops");
        pos = end;
    }
    return out;
}

double
gflopsOf(const std::vector<Cell>& cells, const std::string& m,
         const std::string& kern, const std::string& tier, Index k)
{
    for (const Cell& c : cells)
        if (c.matrix == m && c.kernel == kern && c.tier == tier && c.k == k)
            return c.gflops;
    return 0;
}

int
checkAgainstBaseline(const std::vector<Cell>& cells,
                     const std::string& path, double tolerance,
                     double min_spmm_speedup,
                     double spmm_fast_k32_speedup)
{
    auto baseline = readBaselineGflops(path);
    // Tiers the baseline run measured at all.  A whole tier absent from
    // the baseline (e.g. AVX-512 locally vs an AVX2 CI runner) is
    // hardware skew and is not gated — but a missing (matrix, kernel,
    // tier, K) key *within* a baseline-covered tier means the baseline
    // is stale relative to the current sweep, and silently skipping it
    // would let a regression on the new cell pass unexamined.
    std::set<std::string> baseline_tiers;
    for (const auto& [key, gflops] : baseline)
        baseline_tiers.insert(std::get<2>(key));
    int failures = 0;
    for (const Cell& c : cells) {
        if (c.tier == "scalar")
            continue;
        const double scalar_now =
            gflopsOf(cells, c.matrix, c.kernel, "scalar", c.k);
        auto vec_it = baseline.find({c.matrix, c.kernel, c.tier, c.k});
        auto sc_it = baseline.find({c.matrix, c.kernel, "scalar", c.k});
        if (!baseline_tiers.count(c.tier))
            continue;  // whole tier absent: hardware skew, not gated
        if (vec_it == baseline.end() ||
            (baseline_tiers.count("scalar") && sc_it == baseline.end())) {
            std::printf(
                "BASELINE MISSING %s/%s/%s@K=%u: the baseline JSON covers "
                "tier '%s' but lacks this cell%s — regenerate %s with the "
                "current sweep (run without --check and commit the "
                "output)\n",
                c.matrix.c_str(), c.kernel.c_str(), c.tier.c_str(),
                unsigned(c.k), c.tier.c_str(),
                vec_it == baseline.end() ? "" : "'s scalar reference",
                path.c_str());
            ++failures;
            continue;
        }
        if (scalar_now <= 0 || sc_it == baseline.end() ||
            sc_it->second <= 0)
            continue;
        const double ratio_now = c.gflops / scalar_now;
        const double ratio_then = vec_it->second / sc_it->second;
        if (ratio_now < (1.0 - tolerance) * ratio_then) {
            std::printf("REGRESSION %s/%s/%s@K=%u: vs-scalar ratio %.2f "
                        "(baseline %.2f, tolerance %.0f%%)\n",
                        c.matrix.c_str(), c.kernel.c_str(), c.tier.c_str(),
                        unsigned(c.k), ratio_now, ratio_then,
                        tolerance * 100);
            ++failures;
        }
    }
    if (hk::supportedTiers().size() <= 1) {
        std::printf("scalar-only host: SpMM speedup floor not applicable\n");
    } else if (spmm_fast_k32_speedup < min_spmm_speedup) {
        std::printf("FLOOR VIOLATION: fast CSR SpMM @ K=32 geomean "
                    "speedup %.2fx < required %.2fx\n",
                    spmm_fast_k32_speedup, min_spmm_speedup);
        ++failures;
    } else {
        std::printf("SpMM floor OK: fast CSR SpMM @ K=32 is %.2fx "
                    "scalar (>= %.2fx)\n",
                    spmm_fast_k32_speedup, min_spmm_speedup);
    }
    if (failures == 0)
        std::printf("perf check OK: no tier-vs-scalar ratio regressed "
                    ">%.0f%% vs %s\n",
                    tolerance * 100, path.c_str());
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::init(&argc, argv);
    std::string out_path = "BENCH_kernels.json";
    std::string check_path;
    double tolerance = 0.40;
    double min_spmm_speedup = 3.0;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            HT_FATAL_IF(i + 1 >= argc, "missing value for ", a);
            return argv[++i];
        };
        if (a == "--out")
            out_path = next();
        else if (a == "--check")
            check_path = next();
        else if (a == "--tolerance")
            tolerance = std::strtod(next().c_str(), nullptr);
        else if (a == "--min-spmm-speedup")
            min_spmm_speedup = std::strtod(next().c_str(), nullptr);
        else
            HT_FATAL("unknown option '", a, "'");
    }

    bench::banner("bench_kernel_throughput", "kernel library",
                  "Host-kernel GFLOP/s per dispatch tier "
                  "(docs/KERNELS.md), single-threaded raw tables");

    const std::vector<hk::Tier> tiers = hk::supportedTiers();
    std::printf("tiers:");
    for (hk::Tier t : tiers)
        std::printf(" %s", hk::tierName(t));
    std::printf("  (active: %s%s)\n", hk::tierName(hk::activeTier()),
                hk::scalarForced() ? ", force-scalar" : "");

    const std::vector<Index> kset =
        bench::smokeMode() ? std::vector<Index>{8, 32}
                           : std::vector<Index>{8, 32, 128};

    std::vector<Cell> cells;
    std::vector<std::string> header = {"Matrix", "Kernel", "K"};
    for (hk::Tier t : tiers)
        header.push_back(std::string(hk::tierName(t)) + " GF/s");
    header.push_back("best/scalar");
    Table table(header);
    table.setAlign(0, Table::Align::Left);
    table.setAlign(1, Table::Align::Left);

    GeoMean spmm_fast_k32;
    std::map<std::string, GeoMean> tier_geo;

    for (const Workload& w : makeWorkloads()) {
        const hk::CsrView cv = csrView(w.csr);
        const hk::CooView ov = cooView(w.coo);
        const Index rows = w.coo.rows();
        const Index cols = w.coo.cols();
        const size_t nnz = w.coo.nnz();
        Rng rng(0xD15C0 + rows);

        // Exercise the parallel dispatch wrappers once so the kernel.*
        // counters/timers appear in the JSON metrics snapshot.
        {
            DenseMatrix din = DenseMatrix(cols, 32);
            din.fillRandom(rng);
            DenseMatrix dout(rows, 32);
            hk::spmmCsr(cv, 32, din.row(0), dout.row(0),
                        hk::Policy::Golden);
            hk::spmmCsr(cv, 32, din.row(0), dout.row(0), hk::Policy::Fast);
        }

        // K-independent kernels: SpMV (fast CSR + golden COO), k = 1.
        std::vector<Value> x(cols), y(rows);
        for (Value& v : x)
            v = static_cast<Value>(rng.nextDouble(-1.0, 1.0));
        std::vector<double> yacc(rows, 0.0);
        struct Row
        {
            std::string kernel;
            Index k;
            std::vector<Cell> per_tier;
        };
        std::vector<Row> rows_out;
        for (hk::Tier t : tiers) {
            const hk::KernelOps& ops = hk::opsForTier(t);
            const std::string tn = hk::tierName(t);
            auto push = [&](const std::string& kern, Index k, Cell c) {
                for (Row& r : rows_out)
                    if (r.kernel == kern && r.k == k) {
                        r.per_tier.push_back(std::move(c));
                        return;
                    }
                rows_out.push_back({kern, k, {std::move(c)}});
            };
            push("spmv_csr_fast", 1,
                 timeKernel(w.name, "spmv_csr_fast", tn, 1, 2.0 * nnz,
                            [&] {
                                ops.spmv_csr_fast(cv, x.data(), y.data(),
                                                  0, rows);
                            }));
            push("spmv_coo_golden", 1,
                 timeKernel(w.name, "spmv_coo_golden", tn, 1, 2.0 * nnz,
                            [&] {
                                ops.spmv_coo_golden(ov, x.data(),
                                                    yacc.data(), 0, nnz);
                            }));
            for (Index k : kset) {
                DenseMatrix din(cols, k);
                DenseMatrix u(rows, k);
                din.fillRandom(rng);
                u.fillRandom(rng);
                DenseMatrix dout(rows, k);
                dout.fill(0);
                std::vector<double> acc(size_t(rows) * k, 0.0);
                std::vector<Value> sout(nnz, 0);
                const double mac_flops = 2.0 * double(nnz) * k;
                push("spmm_csr_golden", k,
                     timeKernel(w.name, "spmm_csr_golden", tn, k,
                                mac_flops, [&] {
                                    ops.spmm_csr_golden(cv, k, din.row(0),
                                                        dout.row(0), 0,
                                                        rows);
                                }));
                push("spmm_csr_fast", k,
                     timeKernel(w.name, "spmm_csr_fast", tn, k, mac_flops,
                                [&] {
                                    ops.spmm_csr_fast(cv, k, din.row(0),
                                                      dout.row(0), 0,
                                                      rows);
                                }));
                push("spmm_coo_golden", k,
                     timeKernel(w.name, "spmm_coo_golden", tn, k,
                                mac_flops, [&] {
                                    ops.spmm_coo_golden(ov, k, din.row(0),
                                                        acc.data(), 0, 0,
                                                        nnz);
                                }));
                push("spmm_coo_fast", k,
                     timeKernel(w.name, "spmm_coo_fast", tn, k, mac_flops,
                                [&] {
                                    ops.spmm_coo_fast(ov, k, din.row(0),
                                                      dout.row(0), 0,
                                                      nnz);
                                }));
                push("sddmm_golden", k,
                     timeKernel(w.name, "sddmm_golden", tn, k, mac_flops,
                                [&] {
                                    ops.sddmm_golden(ov, k, u.row(0),
                                                     din.row(0),
                                                     sout.data(), 0, nnz);
                                }));
                push("sddmm_fast", k,
                     timeKernel(w.name, "sddmm_fast", tn, k, mac_flops,
                                [&] {
                                    ops.sddmm_fast(ov, k, u.row(0),
                                                   din.row(0), sout.data(),
                                                   0, nnz);
                                }));
                push("gspmm_ai_x4", k,
                     timeKernel(w.name, "gspmm_ai_x4", tn, k,
                                4.0 * mac_flops, [&] {
                                    ops.gspmm_ai(ov, k, 4, din.row(0),
                                                 dout.row(0), 0, nnz);
                                }));
            }
        }
        for (const Row& r : rows_out) {
            std::vector<std::string> cols_out = {w.name, r.kernel,
                                                 std::to_string(r.k)};
            double scalar_gf = 0, best_gf = 0;
            for (const Cell& c : r.per_tier) {
                cols_out.push_back(Table::num(c.gflops, 2));
                if (c.tier == "scalar")
                    scalar_gf = c.gflops;
                best_gf = std::max(best_gf, c.gflops);
                cells.push_back(c);
            }
            const double speedup =
                scalar_gf > 0 ? best_gf / scalar_gf : 0;
            cols_out.push_back(Table::num(speedup, 2) + "x");
            table.addRow(cols_out);
            if (speedup > 0) {
                if (r.kernel == "spmm_csr_fast" && r.k == 32)
                    spmm_fast_k32.add(speedup);
                for (const Cell& c : r.per_tier)
                    if (c.tier != "scalar" && scalar_gf > 0)
                        tier_geo[c.tier].add(c.gflops / scalar_gf);
            }
        }
    }
    table.print(std::cout);
    std::printf("(best/scalar compares the fastest tier against the "
                "genuinely-scalar tier table)\n");
    std::map<std::string, double> tier_geomeans;
    tier_geomeans["scalar"] = 1.0;
    for (auto& [tier, g] : tier_geo) {
        tier_geomeans[tier] = g.value();
        std::printf("geomean %s vs scalar (all kernels/K): %.2fx\n",
                    tier.c_str(), g.value());
    }
    const double spmm32 =
        spmm_fast_k32.count() ? spmm_fast_k32.value() : 0.0;
    if (hk::supportedTiers().size() > 1)
        std::printf("geomean fast CSR SpMM @ K=32 vs scalar: %.2fx\n",
                    spmm32);

    writeJson(out_path, cells, bench::smokeMode(), spmm32, tier_geomeans);
    std::printf("wrote %s\n", out_path.c_str());

    if (!check_path.empty())
        return checkAgainstBaseline(cells, check_path, tolerance,
                                    min_spmm_speedup, spmm32);
    return 0;
}
