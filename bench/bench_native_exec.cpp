/**
 * @file
 * Native execution throughput harness (docs/EXECUTION.md): runs each
 * bench matrix's partition plan for real on the host CPU under four
 * assignment strategies — the HotTiles plan, the IMH-unaware random
 * split, and the two homogeneous degenerates (AllHot / AllCold) — and
 * emits BENCH_native.json with GFLOP/s plus the per-class
 * measured-vs-predicted model error of every matrix x strategy cell.
 *
 * Flags (besides the shared --smoke / --threads):
 *   --out FILE   JSON output path (default BENCH_native.json)
 *   --check      self-check gates, exit 1 on violation: every Golden
 *                run must be bit-identical to the serial reference
 *                executor, every Fast run within kernel tolerance of
 *                it, and every cell must report nonzero throughput.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "arch/arch_config.hpp"
#include "bench_util.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "core/hottiles.hpp"
#include "core/telemetry.hpp"
#include "exec/backend.hpp"
#include "kernels/dispatch.hpp"
#include "partition/predicted_runtime.hpp"
#include "sparse/dense.hpp"

using namespace hottiles;

namespace {

struct Cell
{
    std::string matrix;
    std::string strategy;
    double gflops = 0;
    double wall_ms = 0;
    double prepare_ms = 0;
    double hot_nnz_fraction = 0;
    double hot_err_mean_pct = 0;   //!< 0 when the class had no samples
    double cold_err_mean_pct = 0;
    size_t stolen_tasks = 0;
    unsigned threads = 0;
};

struct CheckFailure
{
    std::string what;
};

void
writeJson(const std::string& path, const std::vector<Cell>& cells,
          bool smoke)
{
    std::ofstream out(path);
    HT_FATAL_IF(!out, "cannot open '", path, "' for writing");
    out << "{\n"
        << "  \"schema\": \"hottiles.bench_native.v1\",\n"
        << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
        << "  \"active_tier\": \""
        << kernels::tierName(kernels::activeTier()) << "\",\n"
        << "  \"metrics\": ";
    MetricsRegistry::global().writeJson(out);
    out << ",\n  \"results\": [\n";
    for (size_t i = 0; i < cells.size(); ++i) {
        const Cell& c = cells[i];
        out << "    {\"matrix\": \"" << c.matrix << "\", \"strategy\": \""
            << c.strategy << "\", \"gflops\": " << c.gflops
            << ", \"wall_ms\": " << c.wall_ms
            << ", \"prepare_ms\": " << c.prepare_ms
            << ", \"hot_nnz_fraction\": " << c.hot_nnz_fraction
            << ", \"hot_err_mean_pct\": " << c.hot_err_mean_pct
            << ", \"cold_err_mean_pct\": " << c.cold_err_mean_pct
            << ", \"stolen_tasks\": " << c.stolen_tasks
            << ", \"threads\": " << c.threads << "}"
            << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

} // namespace

int
main(int argc, char** argv)
{
    bench::init(&argc, argv);
    std::string out_path = "BENCH_native.json";
    bool check = false;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--out") {
            HT_FATAL_IF(i + 1 >= argc, "missing value for --out");
            out_path = argv[++i];
        } else if (a == "--check") {
            check = true;
        } else {
            HT_FATAL("unknown option '", a, "'");
        }
    }

    bench::banner("bench_native_exec", "native execution",
                  "Host-CPU execution of partition plans "
                  "(docs/EXECUTION.md): GFLOP/s and "
                  "measured-vs-predicted model error per strategy");

    const Architecture arch = calibrated(makeSpadeSextans(4));
    HotTilesOptions opts;
    opts.kernel.kind = SparseKernel::Spmm;
    opts.kernel.k = 32;
    opts.build_formats = false;

    std::vector<Cell> cells;
    std::vector<CheckFailure> failures;
    Table table({"Matrix", "Strategy", "Hot nnz %", "GFLOP/s", "Wall ms",
                 "Hot err%", "Cold err%"});

    for (const std::string& name : bench::tableVNames()) {
        const CooMatrix& m = bench::suiteMatrix(name);
        HotTiles ht(arch, m, opts);
        const TileGrid& grid = ht.grid();
        const KernelConfig& kernel = ht.context().kernel;
        DenseMatrix din(grid.matrixCols(), kernel.k);
        Rng rng(42);
        din.fillRandom(rng);

        Partition all_hot, all_cold;
        all_hot.is_hot.assign(grid.numTiles(), 1);
        all_hot.heuristic = "AllHot";
        all_cold.is_hot.assign(grid.numTiles(), 0);
        all_cold.heuristic = "AllCold";
        const std::pair<const char*, Partition> strategies[] = {
            {"HotTiles", ht.partition()},
            {"IUnaware", ht.iunaware()},
            {"AllHot", std::move(all_hot)},
            {"AllCold", std::move(all_cold)},
        };

        for (const auto& [strategy, p] : strategies) {
            exec::NativeExecOptions eo;
            AssignmentTotals totals =
                assignmentTotals(ht.context(), p.is_hot);
            if (totals.th_total + totals.tc_total > 0)
                eo.hot_share_hint =
                    totals.th_total / (totals.th_total + totals.tc_total);

            exec::ExecReport rep;
            DenseMatrix out = exec::makeNativeCpuBackend(eo)->run(
                grid, p, kernel, din, &rep);

            PredictionErrorTelemetry tel =
                exec::computeNativePredictionError(grid, ht.context(),
                                                   p.is_hot, rep);
            const std::string label = std::string("native.") + strategy;
            recordPredictionError(tel, label);
            const PredictionErrorSummary hs =
                summarizePredictionError(tel.hot_tiles);
            const PredictionErrorSummary cs =
                summarizePredictionError(tel.cold_panels);

            Cell c;
            c.matrix = name;
            c.strategy = strategy;
            c.gflops = rep.gflops;
            c.wall_ms = rep.wall_s * 1e3;
            c.prepare_ms = rep.prepare_s * 1e3;
            c.hot_nnz_fraction = p.hotNnzFraction(grid);
            c.hot_err_mean_pct = hs.mean_pct;
            c.cold_err_mean_pct = cs.mean_pct;
            c.stolen_tasks = rep.hot.stolen_tasks + rep.cold.stolen_tasks;
            c.threads = rep.threads;
            cells.push_back(c);
            table.addRow({name, strategy,
                          Table::num(100 * c.hot_nnz_fraction, 1),
                          Table::num(c.gflops, 2), Table::num(c.wall_ms, 3),
                          hs.count ? Table::num(hs.mean_pct, 1) : "-",
                          cs.count ? Table::num(cs.mean_pct, 1) : "-"});

            if (!check)
                continue;
            // Self-check gates: correctness of the whole execution path,
            // not perf (absolute GFLOP/s is host property).
            const DenseMatrix ref =
                exec::referenceExecute(grid, p, kernel, din);
            if (out.data().size() != ref.data().size() ||
                std::memcmp(out.data().data(), ref.data().data(),
                            out.data().size() * sizeof(Value)) != 0)
                failures.push_back(
                    {"CHECK FAILED " + c.matrix + "/" + c.strategy +
                     ": Golden run is not bit-identical to the reference "
                     "executor (max |diff| " +
                     std::to_string(out.maxAbsDiff(ref)) + ")"});
            exec::NativeExecOptions fast = eo;
            fast.policy = kernels::Policy::Fast;
            fast.collect_unit_times = false;
            const DenseMatrix fout = exec::makeNativeCpuBackend(fast)->run(
                grid, p, kernel, din);
            if (!fout.approxEqual(ref))
                failures.push_back(
                    {"CHECK FAILED " + c.matrix + "/" + c.strategy +
                     ": Fast run diverges from the reference executor "
                     "(max |diff| " + std::to_string(fout.maxAbsDiff(ref)) +
                     ")"});
            if (!(rep.gflops > 0))
                failures.push_back({"CHECK FAILED " + c.matrix + "/" +
                                    c.strategy +
                                    ": nonpositive GFLOP/s reported"});
        }
    }

    table.print(std::cout);
    writeJson(out_path, cells, bench::smokeMode());
    std::printf("wrote %zu cells to %s\n", cells.size(), out_path.c_str());

    if (check) {
        for (const CheckFailure& f : failures)
            std::printf("%s\n", f.what.c_str());
        if (failures.empty())
            std::printf("native exec check OK: every strategy verified "
                        "against the reference executor\n");
        return failures.empty() ? 0 : 1;
    }
    return 0;
}
