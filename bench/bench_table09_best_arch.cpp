/**
 * @file
 * Table IX reproduction: per-matrix best iso-scale architecture,
 * predicted by HotTiles vs measured — the reconfigurable-accelerator
 * scenario (§VIII-B).  Paper: predictions pick the true best for 50% of
 * the matrices (with a bias toward hot-heavy designs), yet deliver a
 * 1.23x average speedup over always using 4-4 (oracle: 1.33x).
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/explorer.hpp"

using namespace hottiles;
using namespace hottiles::bench;

int
main(int argc, char** argv)
{
    init(&argc, argv);
    banner("Table IX", "HPCA'24 HotTiles, Table IX",
           "Per-matrix best iso-scale architecture: predicted vs actual");

    const int total = 8;
    Table t({"Matrix", "Pred. best", "Speedup of pred.", "Actual best",
             "Speedup of actual", "Correct?"});
    GeoMean pred_speedup;
    GeoMean oracle_speedup;
    int correct = 0;
    int n = 0;
    for (const auto& name : tableVNames()) {
        auto pts = exploreIsoScale(suiteMatrix(name), total, KernelConfig{});
        size_t bp = bestPredicted(pts);
        size_t ba = bestActual(pts);
        double base = pts[4].actual_cycles;  // the 4-4 design
        // "Speedup of predicted best" is the ACTUAL speedup achieved by
        // reconfiguring to the predicted design (Table IX semantics).
        double sp_pred = base / pts[bp].actual_cycles;
        double sp_act = base / pts[ba].actual_cycles;
        pred_speedup.add(sp_pred);
        oracle_speedup.add(sp_act);
        bool ok = bp == ba;
        correct += ok ? 1 : 0;
        ++n;
        t.addRow({name, pts[bp].label(), Table::num(sp_pred, 2),
                  pts[ba].label(), Table::num(sp_act, 2), ok ? "Y" : "N"});
    }
    t.addRow({"AVG", "", Table::num(pred_speedup.value(), 2), "",
              Table::num(oracle_speedup.value(), 2),
              Table::num(100.0 * correct / std::max(n, 1), 0) + "%"});
    t.print(std::cout);
    std::cout << "\n(paper: predicted 1.23x, oracle 1.33x, 50% correct)\n";
    return 0;
}
