/**
 * @file
 * Fig 13 reproduction: heterogeneous HotTiles at system scale 4 versus
 * homogeneous architectures with DOUBLE the workers of one type (scale
 * 8 hot-only and scale 8 cold-only).  Paper: HotTiles4 averages 2.9x
 * over HotOnly8 and 1.6x over ColdOnly8 — a heterogeneous architecture
 * beats a homogeneous one with twice the workers of either type.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/hottiles.hpp"

using namespace hottiles;
using namespace hottiles::bench;

int
main(int argc, char** argv)
{
    init(&argc, argv);
    banner("Figure 13", "HPCA'24 HotTiles, Fig 13",
           "HotTiles scale 4 vs homogeneous scale 8");

    Architecture arch4 = calibrated(makeSpadeSextans(4));
    Architecture arch8 = calibrated(makeSpadeSextans(8));

    Table t({"Matrix", "vs HotOnly8", "vs ColdOnly8"});
    GeoMean vs_hot8;
    GeoMean vs_cold8;
    for (const auto& name : tableVNames()) {
        const CooMatrix& m = suiteMatrix(name);
        HotTilesOptions opts;
        opts.build_formats = false;
        HotTiles ht(arch4, m, opts);
        double ht4 = double(
            simulateExecution(arch4, ht.grid(), ht.partition().is_hot,
                              ht.partition().serial, opts.kernel)
                .stats.cycles);
        // The tile grid is shared (tile size is scale independent here).
        double hot8 = double(
            simulateHomogeneous(arch8, ht.grid(), true, opts.kernel)
                .stats.cycles);
        double cold8 = double(
            simulateHomogeneous(arch8, ht.grid(), false, opts.kernel)
                .stats.cycles);
        vs_hot8.add(hot8 / ht4);
        vs_cold8.add(cold8 / ht4);
        t.addRow({name, Table::num(hot8 / ht4, 2),
                  Table::num(cold8 / ht4, 2)});
    }
    std::cout << "\nSpeedup of HotTiles4 over double-size homogeneous:\n";
    t.print(std::cout);
    std::cout << "geomean: " << Table::num(vs_hot8.value(), 2)
              << "x vs HotOnly8 (paper 2.9x), "
              << Table::num(vs_cold8.value(), 2)
              << "x vs ColdOnly8 (paper 1.6x)\n";
    return 0;
}
