/**
 * @file
 * Fig 5 reproduction: the tile-to-worker assignment maps of IUnaware and
 * HotTiles on the `pap` citation-network matrix (SPADE-Sextans).
 * IUnaware scatters hot tiles at random; HotTiles clusters them on the
 * dense diagonal sub-communities, raising the hot nonzero share (52% ->
 * 72% in the paper).  The maps are rendered as downsampled ASCII grids
 * ('#' = mostly hot tiles, '.' = cold, ' ' = empty).
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/hottiles.hpp"

using namespace hottiles;
using namespace hottiles::bench;

namespace {

/** Render the assignment as a cell-downsampled ASCII map. */
void
printMap(const TileGrid& grid, const std::vector<uint8_t>& is_hot,
         const std::string& label, int cells = 32)
{
    std::vector<std::vector<double>> hot_frac(
        cells, std::vector<double>(cells, 0.0));
    std::vector<std::vector<int>> occupied(cells, std::vector<int>(cells, 0));
    for (size_t i = 0; i < grid.numTiles(); ++i) {
        const Tile& t = grid.tile(i);
        int r = int(uint64_t(t.panel) * cells / grid.numPanels());
        int c = int(uint64_t(t.tcol) * cells / grid.numTileCols());
        ++occupied[r][c];
        if (is_hot[i])
            hot_frac[r][c] += 1.0;
    }
    std::cout << "\n" << label << ":\n";
    for (int r = 0; r < cells; ++r) {
        std::cout << "  ";
        for (int c = 0; c < cells; ++c) {
            if (occupied[r][c] == 0) {
                std::cout << ' ';
            } else {
                double f = hot_frac[r][c] / occupied[r][c];
                std::cout << (f > 0.5 ? '#' : f > 0.0 ? '+' : '.');
            }
        }
        std::cout << "\n";
    }
}

} // namespace

int
main(int argc, char** argv)
{
    init(&argc, argv);
    banner("Figure 5", "HPCA'24 HotTiles, Fig 5",
           "Assignment of pap tiles to hot (#) and cold (.) workers");

    Architecture arch = calibrated(makeSpadeSextans(4));
    HotTilesOptions opts;
    opts.build_formats = false;
    HotTiles ht(arch, suiteMatrix("pap"), opts);

    Partition iu = ht.iunaware();
    const Partition& hot_tiles = ht.partition();

    printMap(ht.grid(), iu.is_hot, "IUnaware (random scatter)");
    printMap(ht.grid(), hot_tiles.is_hot,
             "HotTiles (clusters on dense sub-communities)");

    Table t({"Method", "Hot tile fraction", "Hot nonzero fraction"});
    t.addRow({"IUnaware", Table::num(100 * iu.hotTileFraction(), 1) + "%",
              Table::num(100 * iu.hotNnzFraction(ht.grid()), 1) + "%"});
    t.addRow({"HotTiles",
              Table::num(100 * hot_tiles.hotTileFraction(), 1) + "%",
              Table::num(100 * hot_tiles.hotNnzFraction(ht.grid()), 1) +
                  "%"});
    std::cout << "\n";
    t.print(std::cout);
    std::cout << "(paper: IUnaware 52% of nonzeros hot -> HotTiles 72%)\n";
    return 0;
}
