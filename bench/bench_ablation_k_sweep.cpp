/**
 * @file
 * Ablation: sensitivity to the dense width K.  The paper fixes K = 32
 * "similar to prior works" (§VII-B); this sweep verifies that the
 * HotTiles advantage is not an artifact of that choice.  Narrow K makes
 * the kernel more sparse-traffic dominated (cold-leaning); wide K makes
 * dense rows dominate and scratchpad streaming amortize better
 * (hot-leaning) — the partitioner should adapt and keep winning.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

using namespace hottiles;
using namespace hottiles::bench;

int
main(int argc, char** argv)
{
    init(&argc, argv);
    banner("Ablation: dense width K", "HPCA'24 HotTiles, §VII-B",
           "HotTiles across K (SPADE-Sextans scale 4)");

    Architecture arch = calibrated(makeSpadeSextans(4));
    std::vector<std::string> names = {"ski", "pap", "kro", "myc", "pok"};

    Table t({"K", "vs HotOnly", "vs ColdOnly", "vs IUnaware", "vs BestHom",
             "% nnz hot (geomean)"});
    for (uint32_t k : {8u, 16u, 32u, 64u, 128u}) {
        HotTilesOptions opts;
        opts.kernel.k = k;
        opts.build_formats = false;
        GeoMean vs_hot;
        GeoMean vs_cold;
        GeoMean vs_iu;
        GeoMean vs_best;
        GeoMean hot_frac;
        for (const auto& name : names) {
            MatrixEvaluation ev =
                evaluateMatrix(arch, suiteMatrix(name), name, opts);
            double ht = ev.hottiles.cycles();
            vs_hot.add(ev.hot_only.cycles() / ht);
            vs_cold.add(ev.cold_only.cycles() / ht);
            vs_iu.add(ev.iunaware.cycles() / ht);
            vs_best.add(ev.bestHomogeneousCycles() / ht);
            double f = ev.hottiles.partition.hotNnzFraction(
                suiteGrid(name, arch.tile_height, arch.tile_width));
            hot_frac.add(std::max(f, 1e-4));
        }
        t.addRow({std::to_string(k), Table::num(vs_hot.value(), 2),
                  Table::num(vs_cold.value(), 2),
                  Table::num(vs_iu.value(), 2),
                  Table::num(vs_best.value(), 2),
                  Table::num(100 * hot_frac.value(), 1)});
    }
    t.print(std::cout);
    std::cout << "\nHotTiles beats IUnaware at every K; the hot share "
                 "adapts with the dense width.\n";
    return 0;
}
