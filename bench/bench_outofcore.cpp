/**
 * @file
 * Out-of-core preprocessing harness (docs/OUTOFCORE.md): measures the
 * panel-streamed planner (streamedPlan over a memory-mapped `.htb`)
 * against the in-memory pipeline on an RMAT matrix, emitting
 * BENCH_outofcore.json.
 *
 * `ru_maxrss` is a process-lifetime high-water mark, so each measured
 * phase (generate / in-memory plan / streamed plan) runs in its own
 * child process (fork + execv of /proc/self/exe with a hidden --phase
 * flag); the parent collects the child's peak RSS from wait4.  Every
 * phase writes a plan fingerprint (FNV-1a over the tile directory, the
 * model estimates and the partition) so bit-identity is enforced
 * across the in-memory path and streamed runs at 1, 2 and 7 threads.
 * The parent additionally cross-checks the full-build mmap path
 * in-process at a small scale: HotTiles from a MappedMatrix must be
 * samePreprocessedState-identical to the in-memory constructor and
 * produce byte-identical reference SpMM output.
 *
 * Flags (besides the shared --smoke / --threads):
 *   --out FILE   JSON output path (default BENCH_outofcore.json)
 *   --check      self-check gates, exit 1 on violation: all plan
 *                fingerprints identical and the in-process mmap build
 *                bit-identical; additionally, unless --smoke (ASan
 *                inflates RSS), the streamed planner's peak RSS must be
 *                >= 4x below the in-memory phase and its preprocessing
 *                throughput >= 0.8x of it.
 */

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/random.hpp"
#include "common/rss.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/calibrate.hpp"
#include "core/hottiles.hpp"
#include "core/outofcore.hpp"
#include "core/preprocess.hpp"
#include "exec/backend.hpp"
#include "sparse/generators.hpp"
#include "sparse/htb.hpp"
#include "sparse/panel_stream.hpp"

using namespace hottiles;
using namespace hottiles::bench;

namespace {

struct Config
{
    Index rows = 0;
    size_t nnz = 0;     // requested (pre-dedup) nonzeros
    Index tile = 0;     // tile height == width == .htb panel_rows
    uint64_t seed = 7;
};

/** FNV-1a over the plan bits: directory, estimates, partition. */
struct Fingerprint
{
    uint64_t h = 1469598103934665603ull;

    void bytes(const void* p, size_t n)
    {
        const auto* b = static_cast<const unsigned char*>(p);
        for (size_t i = 0; i < n; ++i) {
            h ^= b[i];
            h *= 1099511628211ull;
        }
    }
    template <typename T> void pod(const T& v) { bytes(&v, sizeof v); }

    void tile(const Tile& t)
    {
        pod(t.panel);
        pod(t.tcol);
        pod(t.row0);
        pod(t.col0);
        pod(t.height);
        pod(t.width);
        pod(t.offset);
        pod(t.nnz);
        pod(t.uniq_rids);
        pod(t.uniq_cids);
    }
    void estimate(const TileEstimate& e)
    {
        pod(e.th);
        pod(e.tc);
        pod(e.bh);
        pod(e.bc);
    }
    void partition(const Partition& p)
    {
        bytes(p.is_hot.data(), p.is_hot.size());
        pod(p.serial);
        pod(p.predicted_cycles);
        bytes(p.heuristic.data(), p.heuristic.size());
    }
};

uint64_t
planFingerprint(size_t num_tiles, const std::function<const Tile&(size_t)>& at,
                const std::vector<TileEstimate>& est, const Partition& p)
{
    Fingerprint f;
    f.pod(num_tiles);
    for (size_t i = 0; i < num_tiles; ++i)
        f.tile(at(i));
    for (const TileEstimate& e : est)
        f.estimate(e);
    f.partition(p);
    return f.h;
}

Architecture
benchArch(Index tile)
{
    Architecture arch = calibrated(makeSpadeSextans(4));
    arch.tile_height = tile;
    arch.tile_width = tile;
    return arch;
}

/* ---------------------------------------------------------------- *
 * Child phases.  Each writes key=value lines to --result and exits
 * 0; the parent reads the file and the wait4 rusage.
 * ---------------------------------------------------------------- */

void
writeResult(const std::string& path,
            const std::map<std::string, std::string>& kv)
{
    std::ofstream out(path);
    HT_FATAL_IF(!out, "cannot open result file '", path, "'");
    for (const auto& [k, v] : kv)
        out << k << "=" << v << "\n";
}

std::map<std::string, std::string>
readResult(const std::string& path)
{
    std::ifstream in(path);
    HT_FATAL_IF(!in, "phase child wrote no result file '", path, "'");
    std::map<std::string, std::string> kv;
    std::string line;
    while (std::getline(in, line)) {
        size_t eq = line.find('=');
        if (eq != std::string::npos)
            kv[line.substr(0, eq)] = line.substr(eq + 1);
    }
    return kv;
}

int
phaseGen(const Config& c, const std::string& htb, const std::string& result)
{
    uint64_t nnz = genRmatHtb(htb, c.rows, c.nnz, 0.57, 0.19, 0.19, 0.05,
                              c.seed, c.tile);
    writeResult(result, {{"nnz", std::to_string(nnz)}});
    return 0;
}

int
phaseInmem(const Config& c, const std::string& htb, const std::string& result)
{
    Architecture arch = benchArch(c.tile);
    HotTilesOptions opts;
    opts.build_formats = false;  // plan-for-plan comparison vs streamedPlan
    double t0 = monotonicSeconds();
    CooMatrix m = loadHtbToCoo(htb);
    HotTiles ht(arch, m, opts);
    double secs = monotonicSeconds() - t0;

    const TileGrid& g = ht.grid();
    uint64_t fp = planFingerprint(
        g.numTiles(), [&](size_t i) -> const Tile& { return g.tile(i); },
        ht.context().estimates, ht.partition());
    writeResult(result, {{"fingerprint", std::to_string(fp)},
                         {"seconds", std::to_string(secs)},
                         {"nnz", std::to_string(m.nnz())},
                         {"tiles", std::to_string(g.numTiles())}});
    return 0;
}

int
phaseStream(const Config& c, const std::string& htb, const std::string& result)
{
    Architecture arch = benchArch(c.tile);
    double t0 = monotonicSeconds();
    MappedMatrix mapped(htb);
    MappedPanelSource src(mapped);
    StreamedPlan plan = streamedPlan(arch, src, {});
    double secs = monotonicSeconds() - t0;

    uint64_t fp = planFingerprint(
        plan.tiles.size(),
        [&](size_t i) -> const Tile& { return plan.tiles[i]; },
        plan.estimates, plan.partition);
    writeResult(result, {{"fingerprint", std::to_string(fp)},
                         {"seconds", std::to_string(secs)},
                         {"nnz", std::to_string(plan.nnz)},
                         {"tiles", std::to_string(plan.tiles.size())}});
    return 0;
}

/* ---------------------------------------------------------------- *
 * Parent: spawn phases, collect rusage, gate and report.
 * ---------------------------------------------------------------- */

struct PhaseRun
{
    std::string phase;
    unsigned threads = 0;
    double seconds = 0;
    uint64_t peak_rss = 0;  // bytes
    uint64_t fingerprint = 0;
    size_t nnz = 0;
    size_t tiles = 0;
};

/** Run one phase in a child process; returns its result + ru_maxrss. */
PhaseRun
runPhase(const std::string& phase, unsigned threads, const Config& c,
         const std::string& htb, const std::string& result_path)
{
    std::remove(result_path.c_str());
    std::vector<std::string> args = {
        "/proc/self/exe",
        "--phase", phase,
        "--threads", std::to_string(threads),
        "--htb", htb,
        "--result", result_path,
        "--rows", std::to_string(c.rows),
        "--nnz", std::to_string(c.nnz),
        "--tile", std::to_string(c.tile),
        "--seed", std::to_string(c.seed),
    };
    std::vector<char*> argv;
    for (auto& a : args)
        argv.push_back(a.data());
    argv.push_back(nullptr);

    pid_t pid = fork();
    HT_FATAL_IF(pid < 0, "fork failed: ", std::strerror(errno));
    if (pid == 0) {
        execv("/proc/self/exe", argv.data());
        // Only reached when execv itself fails.
        std::perror("execv");
        _exit(127);
    }
    int status = 0;
    struct rusage ru {};
    pid_t got;
    do {
        got = wait4(pid, &status, 0, &ru);
    } while (got < 0 && errno == EINTR);
    HT_FATAL_IF(got != pid, "wait4 failed: ", std::strerror(errno));
    HT_FATAL_IF(!WIFEXITED(status) || WEXITSTATUS(status) != 0, "phase '",
                phase, "' child failed (status ", status, ")");

    auto kv = readResult(result_path);
    PhaseRun r;
    r.phase = phase;
    r.threads = threads;
    r.peak_rss = uint64_t(ru.ru_maxrss) * 1024;  // Linux reports KiB
    if (kv.count("seconds"))
        r.seconds = std::stod(kv["seconds"]);
    if (kv.count("fingerprint"))
        r.fingerprint = std::stoull(kv["fingerprint"]);
    if (kv.count("nnz"))
        r.nnz = std::stoull(kv["nnz"]);
    if (kv.count("tiles"))
        r.tiles = std::stoull(kv["tiles"]);
    return r;
}

/**
 * In-process cross-check at small scale: the full-build mmap path
 * (HotTiles from MappedMatrix) against the in-memory constructor, plus
 * the plan-only streamed path from both panel-source flavours.
 */
bool
inProcessIdentity(std::string& why, const std::string& tmp_htb)
{
    const Index tile = 128;
    Architecture arch = benchArch(tile);
    CooMatrix m = genRmat(Index(1) << 12, size_t(8) << 12, 0.57, 0.19, 0.19,
                          0.05, /*seed=*/21);
    m.sortRowMajor();
    m.dedupSum();
    writeHtbFromCoo(tmp_htb, m, tile);

    HotTilesOptions opts;
    HotTiles inmem(arch, m, opts);
    MappedMatrix mapped(tmp_htb);
    HotTiles viamap(arch, mapped, opts);
    if (!samePreprocessedState(inmem, viamap)) {
        why = "HotTiles(MappedMatrix) state differs from in-memory build";
        return false;
    }

    DenseMatrix din(m.cols(), opts.kernel.k);
    Rng rng(99);
    din.fillRandom(rng);
    DenseMatrix a = exec::referenceExecute(inmem.grid(), inmem.partition(),
                                           opts.kernel, din);
    DenseMatrix b = exec::referenceExecute(viamap.grid(), viamap.partition(),
                                           opts.kernel, din);
    if (a.data().size() != b.data().size() ||
        std::memcmp(a.data().data(), b.data().data(),
                    a.data().size() * sizeof(Value)) != 0) {
        why = "mmap-built reference SpMM output differs";
        return false;
    }

    CooPanelSource coo_src(m);
    MappedPanelSource map_src(mapped);
    StreamedPlan pa = streamedPlan(arch, coo_src, {});
    StreamedPlan pb = streamedPlan(arch, map_src, {});
    auto fp = [](const StreamedPlan& p) {
        return planFingerprint(
            p.tiles.size(),
            [&](size_t i) -> const Tile& { return p.tiles[i]; }, p.estimates,
            p.partition);
    };
    uint64_t fa = fp(pa), fb = fp(pb);
    uint64_t fg = planFingerprint(
        inmem.grid().numTiles(),
        [&](size_t i) -> const Tile& { return inmem.grid().tile(i); },
        inmem.context().estimates, inmem.partition());
    if (fa != fb || fa != fg) {
        why = "streamed plan fingerprints diverge (coo/mmap/in-memory)";
        return false;
    }
    return true;
}

void
writeJson(const std::string& path, const Config& c,
          const std::vector<PhaseRun>& runs, double rss_ratio,
          double throughput_ratio, bool identical, bool inprocess_ok,
          bool smoke)
{
    std::ofstream out(path);
    HT_FATAL_IF(!out, "cannot open '", path, "' for writing");
    out << "{\n"
        << "  \"schema\": \"hottiles.bench_outofcore.v1\",\n"
        << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
        << "  \"rows\": " << c.rows << ",\n"
        << "  \"tile\": " << c.tile << ",\n"
        << "  \"rss_ratio\": " << rss_ratio << ",\n"
        << "  \"throughput_ratio\": " << throughput_ratio << ",\n"
        << "  \"plans_identical\": " << (identical ? "true" : "false")
        << ",\n"
        << "  \"inprocess_identical\": " << (inprocess_ok ? "true" : "false")
        << ",\n"
        << "  \"metrics\": ";
    MetricsRegistry::global().writeJson(out);
    out << ",\n  \"phases\": [\n";
    for (size_t i = 0; i < runs.size(); ++i) {
        const PhaseRun& r = runs[i];
        out << "    {\"phase\": \"" << r.phase
            << "\", \"threads\": " << r.threads
            << ", \"seconds\": " << r.seconds
            << ", \"peak_rss_bytes\": " << r.peak_rss
            << ", \"fingerprint\": \"" << std::hex << r.fingerprint
            << std::dec << "\", \"nnz\": " << r.nnz
            << ", \"tiles\": " << r.tiles << "}"
            << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

std::string
mib(uint64_t bytes)
{
    return Table::num(double(bytes) / (1024.0 * 1024.0), 1);
}

} // namespace

int
main(int argc, char** argv)
{
    init(&argc, argv);
    std::string out_path = "BENCH_outofcore.json";
    std::string phase, htb_path, result_path;
    Config c;
    bool check = false;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto val = [&]() -> std::string {
            HT_FATAL_IF(i + 1 >= argc, "missing value for ", a);
            return argv[++i];
        };
        if (a == "--out")
            out_path = val();
        else if (a == "--check")
            check = true;
        else if (a == "--phase")
            phase = val();
        else if (a == "--htb")
            htb_path = val();
        else if (a == "--result")
            result_path = val();
        else if (a == "--rows")
            c.rows = Index(std::stoul(val()));
        else if (a == "--nnz")
            c.nnz = std::stoull(val());
        else if (a == "--tile")
            c.tile = Index(std::stoul(val()));
        else if (a == "--seed")
            c.seed = std::stoull(val());
        else
            HT_FATAL("unknown option '", a, "'");
    }

    // Hidden child mode: run one phase, report, exit.
    if (!phase.empty()) {
        try {
            if (phase == "gen")
                return phaseGen(c, htb_path, result_path);
            if (phase == "inmem")
                return phaseInmem(c, htb_path, result_path);
            if (phase == "stream")
                return phaseStream(c, htb_path, result_path);
            HT_FATAL("unknown phase '", phase, "'");
        } catch (const FatalError& e) {
            std::cerr << "phase " << phase << ": " << e.what() << "\n";
            return 1;
        }
    }

    const bool smoke = smokeMode();
    banner("Out-of-core preprocessing", "docs/OUTOFCORE.md",
           "panel-streamed planner vs in-memory pipeline: peak RSS, "
           "throughput, and plan bit-identity (per-phase child processes)");

    // rmat-20 at ~16 nnz/row is the regime the O(panel) window pays off
    // in: the in-memory path holds ~2x O(nnz) arrays (input + tiled
    // copies) while the streamed planner retains only the tile
    // directory.  Tile 2048 keeps the O(tiles) directory small enough
    // that the 4x RSS gate measures the streaming, not the directory.
    if (smoke) {
        c = {Index(1) << 14, size_t(8) << 14, /*tile=*/512, /*seed=*/7};
    } else {
        c = {Index(1) << 20, size_t(16) << 20, /*tile=*/2048, /*seed=*/7};
    }

    char tmpl[] = "bench_outofcore.XXXXXX";
    HT_FATAL_IF(mkdtemp(tmpl) == nullptr,
                "mkdtemp failed: ", std::strerror(errno));
    std::string dir = tmpl;
    std::string htb = dir + "/m.htb";
    std::string res = dir + "/result.txt";

    std::vector<PhaseRun> runs;
    std::cout << "generating " << (c.rows >> 10) << "Ki-row RMAT (~"
              << (c.nnz >> 20) << "M entries) as " << htb << " ...\n";
    runs.push_back(runPhase("gen", 7, c, htb, res));

    runs.push_back(runPhase("inmem", 7, c, htb, res));
    for (unsigned t : {1u, 2u, 7u})
        runs.push_back(runPhase("stream", t, c, htb, res));

    const PhaseRun& inmem = runs[1];
    const PhaseRun& stream7 = runs.back();
    double rss_ratio = stream7.peak_rss > 0
                           ? double(inmem.peak_rss) / double(stream7.peak_rss)
                           : 0;
    double throughput_ratio =
        stream7.seconds > 0 ? inmem.seconds / stream7.seconds : 0;
    bool identical = true;
    for (const PhaseRun& r : runs)
        if (r.phase != "gen" && r.fingerprint != inmem.fingerprint)
            identical = false;

    std::string why;
    bool inprocess_ok = inProcessIdentity(why, dir + "/small.htb");

    Table t({"Phase", "Threads", "Seconds", "Peak RSS MiB", "Nnz", "Tiles",
             "Fingerprint"});
    for (const PhaseRun& r : runs) {
        std::ostringstream fp;
        fp << std::hex << r.fingerprint;
        t.addRow({r.phase, std::to_string(r.threads), Table::num(r.seconds, 3),
                  mib(r.peak_rss), std::to_string(r.nnz),
                  std::to_string(r.tiles),
                  r.phase == "gen" ? std::string("-") : fp.str()});
    }
    t.print(std::cout);
    std::cout << "\npeak RSS in-memory/streamed: " << Table::num(rss_ratio, 2)
              << "x   streamed throughput vs in-memory: "
              << Table::num(throughput_ratio, 2)
              << "x   plans identical: " << (identical ? "yes" : "NO")
              << "   in-process mmap build identical: "
              << (inprocess_ok ? "yes" : "NO") << "\n";

    writeJson(out_path, c, runs, rss_ratio, throughput_ratio, identical,
              inprocess_ok, smoke);
    std::cout << "wrote " << out_path << "\n";

    std::remove(htb.c_str());
    std::remove(res.c_str());
    std::remove((dir + "/small.htb").c_str());
    rmdir(dir.c_str());

    if (check) {
        std::vector<std::string> failures;
        if (!identical)
            failures.push_back(
                "streamed plan fingerprints diverge from the in-memory plan");
        if (!inprocess_ok)
            failures.push_back("in-process mmap identity: " + why);
        // RSS and throughput gates need unsanitized builds at full
        // scale: ASan shadow memory and --smoke's tiny matrix (where
        // fixed process overhead dominates) both distort the ratios.
        if (!smoke) {
            if (rss_ratio < 4.0)
                failures.push_back("peak RSS ratio " +
                                   Table::num(rss_ratio, 2) + "x < 4x (" +
                                   mib(inmem.peak_rss) + " MiB in-memory vs " +
                                   mib(stream7.peak_rss) + " MiB streamed)");
            if (throughput_ratio < 0.8)
                failures.push_back("streamed preprocessing throughput " +
                                   Table::num(throughput_ratio, 2) +
                                   "x < 0.8x of in-memory");
        }
        if (!failures.empty()) {
            for (const auto& f : failures)
                std::cerr << "CHECK FAILED: " << f << "\n";
            return 1;
        }
        std::cout << "all checks passed: plans bit-identical"
                  << (smoke ? "" : ", >= 4x lower peak RSS, >= 0.8x "
                                   "throughput")
                  << "\n";
    }
    return 0;
}
