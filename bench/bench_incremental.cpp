/**
 * @file
 * Incremental-update harness (docs/INCREMENTAL.md): applies small
 * DeltaBatches to preprocessed RMAT matrices and measures
 * HotTiles::applyDelta against a full from-scratch re-preprocessing of
 * the patched matrix, emitting BENCH_incremental.json.
 *
 * Per configuration: one warmup update first (the round that seeds the
 * partition sweep cache and the format build cache pays full price by
 * design), then measured rounds; update and rebuild times are medians
 * across rounds.  Every measured round checks bit-identity of the full
 * preprocessed state (grid, partition, both formats) against the
 * rebuild, and one round per configuration additionally memcmps the
 * reference SpMM output.
 *
 * Flags (besides the shared --smoke / --threads):
 *   --out FILE   JSON output path (default BENCH_incremental.json)
 *   --check      self-check gates, exit 1 on violation: every round of
 *                every configuration must be bit-identical, and every
 *                configuration whose delta dirties <= 1% of the tiles
 *                must update >= 5x faster than the full rebuild (at
 *                least one configuration must be in that regime).
 */

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "core/calibrate.hpp"
#include "core/hottiles.hpp"
#include "core/preprocess.hpp"
#include "exec/backend.hpp"
#include "sparse/delta.hpp"
#include "sparse/generators.hpp"

using namespace hottiles;
using namespace hottiles::bench;

namespace {

struct Config
{
    std::string name;
    Index rows = 0;
    size_t nnz = 0;
    size_t inserts = 0;
    size_t deletes = 0;
};

struct Row
{
    std::string matrix;
    Index rows = 0;
    size_t nnz = 0;
    size_t tiles = 0;
    size_t delta_ops = 0;
    size_t dirty_tiles = 0;     //!< median across measured rounds
    double dirty_tile_frac = 0; //!< worst (max) across measured rounds
    size_t migrated = 0;        //!< median across measured rounds
    double update_ms = 0;       //!< median across measured rounds
    double rebuild_ms = 0;      //!< median across measured rounds
    double speedup = 0;
    bool identical = true;
};

double
median(std::vector<double> v)
{
    HT_ASSERT(!v.empty(), "median of nothing");
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

/** RMAT skew matching the common graph-benchmark setting. */
CooMatrix
benchMatrix(const Config& c, uint64_t seed)
{
    return genRmat(c.rows, c.nnz, 0.57, 0.19, 0.19, 0.05, seed);
}

Row
runConfig(const Config& c, const Architecture& arch, unsigned rounds)
{
    HotTilesOptions opts;
    CooMatrix m = benchMatrix(c, /*seed=*/7);
    HotTiles ht(arch, m, opts);

    DenseMatrix din(m.cols(), opts.kernel.k);
    Rng rng(99);
    din.fillRandom(rng);

    Row r;
    r.matrix = c.name;
    r.rows = c.rows;
    r.nnz = m.nnz();
    r.tiles = ht.grid().numTiles();
    r.delta_ops = c.inserts + c.deletes;

    // Warmup round: seeds the sweep/format caches at full cost; the
    // steady state an update stream actually lives in starts after it.
    uint64_t delta_seed = 1000;
    {
        DeltaBatch warm = genDeltaBatch(m, c.inserts, c.deletes, delta_seed);
        ht.applyDelta(warm);
        m = applyDeltaToCoo(m, warm);
        ++delta_seed;
    }

    std::vector<double> update_ms, rebuild_ms, dirty, migrated;
    for (unsigned round = 0; round < rounds; ++round, ++delta_seed) {
        DeltaBatch batch =
            genDeltaBatch(m, c.inserts, c.deletes, delta_seed);
        double t0 = monotonicSeconds();
        DeltaUpdateStats st = ht.applyDelta(batch);
        update_ms.push_back((monotonicSeconds() - t0) * 1e3);

        m = applyDeltaToCoo(m, batch);
        t0 = monotonicSeconds();
        HotTiles fresh(arch, m, opts);
        rebuild_ms.push_back((monotonicSeconds() - t0) * 1e3);

        dirty.push_back(double(st.dirty_tiles));
        migrated.push_back(double(st.migrated_tiles));
        r.dirty_tile_frac =
            std::max(r.dirty_tile_frac,
                     double(st.dirty_tiles) / double(ht.grid().numTiles()));

        bool identical = samePreprocessedState(ht, fresh);
        if (identical && round == 0) {
            // State bit-identity already implies identical SpMM output;
            // execute both once per configuration as belt and braces.
            DenseMatrix a = exec::referenceExecute(ht.grid(), ht.partition(),
                                                   opts.kernel, din);
            DenseMatrix b = exec::referenceExecute(
                fresh.grid(), fresh.partition(), opts.kernel, din);
            identical = a.data().size() == b.data().size() &&
                        std::memcmp(a.data().data(), b.data().data(),
                                    a.data().size() * sizeof(Value)) == 0;
        }
        r.identical = r.identical && identical;
    }
    r.dirty_tiles = size_t(median(dirty));
    r.migrated = size_t(median(migrated));
    r.update_ms = median(update_ms);
    r.rebuild_ms = median(rebuild_ms);
    r.speedup = r.update_ms > 0 ? r.rebuild_ms / r.update_ms : 0;
    return r;
}

void
writeJson(const std::string& path, const std::vector<Row>& rows, bool smoke)
{
    std::ofstream out(path);
    HT_FATAL_IF(!out, "cannot open '", path, "' for writing");
    out << "{\n"
        << "  \"schema\": \"hottiles.bench_incremental.v1\",\n"
        << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
        << "  \"metrics\": ";
    MetricsRegistry::global().writeJson(out);
    out << ",\n  \"results\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        out << "    {\"matrix\": \"" << r.matrix
            << "\", \"rows\": " << r.rows << ", \"nnz\": " << r.nnz
            << ", \"tiles\": " << r.tiles
            << ", \"delta_ops\": " << r.delta_ops
            << ", \"dirty_tiles\": " << r.dirty_tiles
            << ", \"dirty_tile_frac\": " << r.dirty_tile_frac
            << ", \"migrated\": " << r.migrated
            << ", \"update_ms\": " << r.update_ms
            << ", \"rebuild_ms\": " << r.rebuild_ms
            << ", \"speedup\": " << r.speedup << ", \"identical\": "
            << (r.identical ? "true" : "false") << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

} // namespace

int
main(int argc, char** argv)
{
    init(&argc, argv);
    std::string out_path = "BENCH_incremental.json";
    bool check = false;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--out") {
            HT_FATAL_IF(i + 1 >= argc, "missing value for --out");
            out_path = argv[++i];
        } else if (a == "--check") {
            check = true;
        } else {
            HT_FATAL("unknown option '", a, "'");
        }
    }

    const bool smoke = smokeMode();
    banner("Incremental updates", "docs/INCREMENTAL.md",
           "applyDelta vs full re-preprocessing on an RMAT update "
           "stream (bit-identity enforced every round)");

    // Small deltas on large matrices is the regime the incremental path
    // is built for: a handful of edge updates dirties a few row panels
    // (well under 1% of the tiles) while the rebuild still pays for
    // every nonzero.  The larger-delta rows chart the crossover.
    std::vector<Config> configs;
    if (smoke) {
        configs = {
            {"rmat-15", Index(1) << 15, size_t(16) << 15, 4, 4},
            {"rmat-18", Index(1) << 18, size_t(16) << 18, 1, 1},
        };
    } else {
        configs = {
            {"rmat-15", Index(1) << 15, size_t(16) << 15, 4, 4},
            {"rmat-16", Index(1) << 16, size_t(16) << 16, 1, 1},
            {"rmat-17", Index(1) << 17, size_t(16) << 17, 1, 1},
            {"rmat-17-big", Index(1) << 17, size_t(16) << 17, 16, 16},
            {"rmat-18", Index(1) << 18, size_t(16) << 18, 1, 1},
        };
    }
    const unsigned rounds = smoke ? 5 : 9;

    Architecture arch = calibrated(makeSpadeSextans(4));
    Table t({"Matrix", "Tiles", "Ops", "Dirty tiles", "Dirty %", "Migrated",
             "Update ms", "Rebuild ms", "Speedup", "Identical"});
    std::vector<Row> rows;
    for (const auto& c : configs) {
        Row r = runConfig(c, arch, rounds);
        t.addRow({r.matrix, std::to_string(r.tiles),
                  std::to_string(r.delta_ops), std::to_string(r.dirty_tiles),
                  Table::num(100.0 * r.dirty_tile_frac, 2),
                  std::to_string(r.migrated), Table::num(r.update_ms, 3),
                  Table::num(r.rebuild_ms, 3), Table::num(r.speedup, 2),
                  r.identical ? "yes" : "NO"});
        rows.push_back(r);
    }
    t.print(std::cout);
    writeJson(out_path, rows, smoke);
    std::cout << "\nwrote " << out_path << "\n";

    if (check) {
        std::vector<std::string> failures;
        size_t small_delta_rows = 0;
        for (const Row& r : rows) {
            if (!r.identical)
                failures.push_back(r.matrix +
                                   ": update diverged from rebuild");
            if (r.dirty_tile_frac <= 0.01) {
                ++small_delta_rows;
                if (r.speedup < 5.0)
                    failures.push_back(
                        r.matrix + ": speedup " + Table::num(r.speedup, 2) +
                        "x < 5x at dirty fraction " +
                        Table::num(100.0 * r.dirty_tile_frac, 2) + "%");
            }
        }
        if (small_delta_rows == 0)
            failures.push_back("no configuration dirtied <= 1% of tiles; "
                               "the 5x gate was never exercised");
        if (!failures.empty()) {
            for (const auto& f : failures)
                std::cerr << "CHECK FAILED: " << f << "\n";
            return 1;
        }
        std::cout << "all checks passed: bit-identical everywhere, >= 5x "
                     "for <= 1%-dirty deltas\n";
    }
    return 0;
}
