/**
 * @file
 * Serving-layer throughput and resilience harness (docs/SERVING.md):
 * closed-loop clients drive the partition-plan service and the harness
 * emits BENCH_serving.json with plans/sec, latency percentiles, cache
 * hit rate and shed rate per scenario:
 *
 *   - plan throughput at 1..64 clients, cold (cache disabled) vs warm
 *     (cache enabled, pre-warmed) — the cache's whole value proposition
 *     is the warm/cold ratio;
 *   - an overload scenario (tiny queue, one worker) measuring the shed
 *     rate under pressure;
 *   - a chaos scenario (--chaos-style seed, every fault class enabled)
 *     proving each request still reaches a terminal state.
 *
 * Flags (besides the shared --smoke / --threads):
 *   --out FILE   JSON output path (default BENCH_serving.json)
 *   --check      self-check gates, exit 1 on violation: warm plan
 *                throughput at 16 clients must be >= 5x cold, no
 *                request may be lost in any scenario, the chaos
 *                scenario must end every request terminally with zero
 *                errors, and overload must actually shed.
 */

#include <algorithm>
#include <atomic>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/table.hpp"
#include "core/preprocess.hpp"
#include "serve/service.hpp"
#include "sparse/generators.hpp"

using namespace hottiles;

namespace {

struct Row
{
    std::string scenario;
    unsigned clients = 0;
    uint64_t requests = 0;
    double wall_s = 0;
    double plans_per_sec = 0;
    double p50_ms = 0;
    double p99_ms = 0;
    double cache_hit_rate = 0;
    double shed_rate = 0;
    uint64_t ok = 0, degraded = 0, shed = 0, timeout = 0, error = 0;
};

double
percentile(std::vector<double>& sorted, double p)
{
    if (sorted.empty())
        return 0;
    size_t idx = static_cast<size_t>(p * double(sorted.size() - 1));
    return sorted[idx];
}

/** Closed-loop client sweep against one service configuration. */
Row
runScenario(const std::string& name, unsigned clients, unsigned per_client,
            serve::ServiceConfig cfg, serve::RequestMode mode,
            const std::vector<std::shared_ptr<const CooMatrix>>& mats,
            bool prewarm)
{
    serve::PlanService service(cfg);

    auto makeReq = [&](uint64_t id, size_t mat_idx) {
        serve::ServeRequest req;
        req.id = id;
        req.matrix_data = mats[mat_idx % mats.size()];
        req.matrix = "#bench";
        req.mode = mode;
        req.kernel.k = 8;
        req.deadline_ms = cfg.default_deadline_ms;
        return req;
    };

    if (prewarm)
        for (size_t i = 0; i < mats.size(); ++i)
            service.call(makeReq(1000000 + i, i));

    std::mutex mu;
    std::vector<double> latencies;
    Row row;
    row.scenario = name;
    row.clients = clients;

    double t0 = monotonicSeconds();
    std::vector<std::thread> threads;
    for (unsigned c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            std::vector<double> local;
            for (unsigned i = 0; i < per_client; ++i) {
                uint64_t id = uint64_t(c) * per_client + i + 1;
                serve::ServeReply r =
                    service.call(makeReq(id, (c + i) % mats.size()));
                local.push_back(r.latency_ms);
                std::lock_guard<std::mutex> lock(mu);
                switch (r.status) {
                case serve::ServeStatus::Ok: ++row.ok; break;
                case serve::ServeStatus::Degraded: ++row.degraded; break;
                case serve::ServeStatus::Shed: ++row.shed; break;
                case serve::ServeStatus::Timeout: ++row.timeout; break;
                case serve::ServeStatus::Error: ++row.error; break;
                }
            }
            std::lock_guard<std::mutex> lock(mu);
            latencies.insert(latencies.end(), local.begin(), local.end());
        });
    }
    for (auto& t : threads)
        t.join();
    service.drain();
    row.wall_s = monotonicSeconds() - t0;

    row.requests = uint64_t(clients) * per_client;
    row.plans_per_sec =
        row.wall_s > 0 ? double(row.ok + row.degraded) / row.wall_s : 0;
    std::sort(latencies.begin(), latencies.end());
    row.p50_ms = percentile(latencies, 0.50);
    row.p99_ms = percentile(latencies, 0.99);
    serve::PlanCacheStats cs = service.cache().stats();
    uint64_t lookups = cs.hits + cs.misses + cs.shared_builds;
    row.cache_hit_rate = lookups ? double(cs.hits) / double(lookups) : 0;
    row.shed_rate =
        row.requests ? double(row.shed) / double(row.requests) : 0;
    service.stop();
    return row;
}

void
writeJson(const std::string& path, const std::vector<Row>& rows,
          bool smoke)
{
    std::ofstream out(path);
    HT_FATAL_IF(!out, "cannot open '", path, "' for writing");
    out << "{\n"
        << "  \"schema\": \"hottiles.bench_serving.v1\",\n"
        << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
        << "  \"metrics\": ";
    MetricsRegistry::global().writeJson(out);
    out << ",\n  \"results\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        out << "    {\"scenario\": \"" << r.scenario
            << "\", \"clients\": " << r.clients
            << ", \"requests\": " << r.requests
            << ", \"wall_s\": " << r.wall_s
            << ", \"plans_per_sec\": " << r.plans_per_sec
            << ", \"p50_ms\": " << r.p50_ms << ", \"p99_ms\": " << r.p99_ms
            << ", \"cache_hit_rate\": " << r.cache_hit_rate
            << ", \"shed_rate\": " << r.shed_rate << ", \"ok\": " << r.ok
            << ", \"degraded\": " << r.degraded << ", \"shed\": " << r.shed
            << ", \"timeout\": " << r.timeout
            << ", \"error\": " << r.error << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

} // namespace

int
main(int argc, char** argv)
{
    bench::init(&argc, argv);
    std::string out_path = "BENCH_serving.json";
    bool check = false;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--out") {
            HT_FATAL_IF(i + 1 >= argc, "missing value for --out");
            out_path = argv[++i];
        } else if (a == "--check") {
            check = true;
        } else {
            HT_FATAL("unknown option '", a, "'");
        }
    }

    bench::banner("bench_serving", "serving layer",
                  "Partition-plan service under closed-loop load "
                  "(docs/SERVING.md): plans/sec cold vs warm, latency "
                  "percentiles, shed rate, chaos terminality");

    // Plans must cost enough that the cache ratio measures plan
    // construction, not queue dispatch overhead — hence a non-trivial
    // structure even under --smoke.
    const bool smoke = bench::smokeMode();
    const Index rows_n = smoke ? 2048 : 6144;
    std::vector<std::shared_ptr<const CooMatrix>> mats;
    for (uint64_t seed : {11ull, 22ull, 33ull, 44ull})
        mats.push_back(std::make_shared<CooMatrix>(
            genCommunity(rows_n, 16.0, 32, 96, 0.8, seed)));

    // One-time process warmup (architecture calibration, allocator) so
    // the first scenario is not charged for it.
    {
        serve::ServiceConfig cfg;
        cfg.workers = 1;
        serve::PlanService warmup(cfg);
        serve::ServeRequest req;
        req.id = 1;
        req.matrix_data = mats[0];
        req.matrix = "#bench";
        req.mode = serve::RequestMode::Plan;
        warmup.call(req);
        warmup.stop();
    }

    const std::vector<unsigned> client_counts =
        smoke ? std::vector<unsigned>{1, 16}
              : std::vector<unsigned>{1, 4, 16, 64};
    const unsigned per_client = smoke ? 3 : 8;

    std::vector<Row> rows;
    double cold16 = 0, warm16 = 0;

    for (unsigned clients : client_counts) {
        serve::ServiceConfig cfg;
        cfg.workers = std::min(clients, 8u);
        cfg.queue_capacity = size_t(clients) + 8;
        cfg.default_deadline_ms = 60000;

        serve::ServiceConfig cold_cfg = cfg;
        cold_cfg.cache_capacity = 0;
        Row cold = runScenario("plan-cold", clients, per_client, cold_cfg,
                               serve::RequestMode::Plan, mats, false);
        Row warm = runScenario("plan-warm", clients, per_client, cfg,
                               serve::RequestMode::Plan, mats, true);
        if (clients == 16) {
            cold16 = cold.plans_per_sec;
            warm16 = warm.plans_per_sec;
        }
        rows.push_back(cold);
        rows.push_back(warm);
    }

    // Overload: one worker behind a two-slot queue, 16 impatient clients.
    {
        serve::ServiceConfig cfg;
        cfg.workers = 1;
        cfg.queue_capacity = 2;
        cfg.default_deadline_ms = 60000;
        rows.push_back(runScenario("overload", 16, per_client, cfg,
                                   serve::RequestMode::Plan, mats, true));
    }

    // Chaos: every fault class enabled, run mode (executes for real).
    {
        serve::ServiceConfig cfg;
        cfg.workers = 8;
        cfg.queue_capacity = 24;
        cfg.default_deadline_ms = smoke ? 2000 : 5000;
        cfg.chaos.seed = 0xC0FFEE;
        rows.push_back(runScenario("chaos", smoke ? 8u : 16u,
                                   smoke ? 2u : 4u, cfg,
                                   serve::RequestMode::Run, mats, false));
    }

    Table table({"Scenario", "Clients", "Requests", "Plans/s", "p50 ms",
                 "p99 ms", "Hit rate", "Shed rate"});
    for (const Row& r : rows)
        table.addRow({r.scenario, std::to_string(r.clients),
                      std::to_string(r.requests),
                      Table::num(r.plans_per_sec, 1),
                      Table::num(r.p50_ms, 2), Table::num(r.p99_ms, 2),
                      Table::num(r.cache_hit_rate, 2),
                      Table::num(r.shed_rate, 2)});
    table.print(std::cout);
    if (cold16 > 0)
        std::cout << "warm/cold plans-per-sec ratio at 16 clients: "
                  << Table::num(warm16 / cold16, 1) << "x\n";

    writeJson(out_path, rows, smoke);
    std::cout << "wrote " << out_path << "\n";

    if (check) {
        std::vector<std::string> failures;
        if (cold16 > 0 && warm16 < 5.0 * cold16)
            failures.push_back(
                "warm plan throughput at 16 clients below 5x cold (" +
                Table::num(warm16 / cold16, 2) + "x)");
        for (const Row& r : rows) {
            uint64_t terminal =
                r.ok + r.degraded + r.shed + r.timeout + r.error;
            if (terminal != r.requests)
                failures.push_back(r.scenario + ": lost requests (" +
                                   std::to_string(terminal) + "/" +
                                   std::to_string(r.requests) + ")");
            if (r.scenario == "chaos" && r.error != 0)
                failures.push_back("chaos: unexpected ERROR replies");
            if (r.scenario == "overload" && r.shed == 0)
                failures.push_back("overload: nothing was shed");
            if (r.scenario != "overload" && r.scenario != "chaos" &&
                (r.shed != 0 || r.error != 0))
                failures.push_back(r.scenario +
                                   ": unexpected shed/error replies");
        }
        if (!failures.empty()) {
            for (const auto& f : failures)
                std::cerr << "CHECK FAILED: " << f << "\n";
            return 1;
        }
        std::cout << "all serving checks passed\n";
    }
    return 0;
}
