/**
 * @file
 * Serving-layer throughput and resilience harness (docs/SERVING.md):
 * closed-loop clients drive the partition-plan service and the harness
 * emits BENCH_serving.json with plans/sec, latency percentiles, cache
 * hit rate and shed rate per scenario:
 *
 *   - plan throughput at 1..64 clients, cold (cache disabled) vs warm
 *     (cache enabled, pre-warmed) — the cache's whole value proposition
 *     is the warm/cold ratio;
 *   - an overload scenario (tiny queue, one worker) measuring the shed
 *     rate under pressure;
 *   - a chaos scenario (--chaos-style seed, every fault class enabled)
 *     proving each request still reaches a terminal state.
 *
 * Flags (besides the shared --smoke / --threads):
 *   --out FILE   JSON output path (default BENCH_serving.json)
 *   --check      self-check gates, exit 1 on violation: warm plan
 *                throughput at 16 clients must be >= 5x cold, no
 *                request may be lost in any scenario, the chaos
 *                scenario must end every request terminally with zero
 *                errors, and overload must actually shed.
 */

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/table.hpp"
#include "core/preprocess.hpp"
#include "serve/service.hpp"
#include "sparse/delta.hpp"
#include "sparse/generators.hpp"

using namespace hottiles;

namespace {

struct Row
{
    std::string scenario;
    unsigned clients = 0;
    uint64_t requests = 0;
    double wall_s = 0;
    double plans_per_sec = 0;
    double p50_ms = 0;
    double p99_ms = 0;
    double cache_hit_rate = 0;
    double shed_rate = 0;
    uint64_t ok = 0, degraded = 0, shed = 0, timeout = 0, error = 0;
};

double
percentile(std::vector<double>& sorted, double p)
{
    if (sorted.empty())
        return 0;
    size_t idx = static_cast<size_t>(p * double(sorted.size() - 1));
    return sorted[idx];
}

/** Closed-loop client sweep against one service configuration. */
Row
runScenario(const std::string& name, unsigned clients, unsigned per_client,
            serve::ServiceConfig cfg, serve::RequestMode mode,
            const std::vector<std::shared_ptr<const CooMatrix>>& mats,
            bool prewarm)
{
    serve::PlanService service(cfg);

    auto makeReq = [&](uint64_t id, size_t mat_idx) {
        serve::ServeRequest req;
        req.id = id;
        req.matrix_data = mats[mat_idx % mats.size()];
        req.matrix = "#bench";
        req.mode = mode;
        req.kernel.k = 8;
        req.deadline_ms = cfg.default_deadline_ms;
        return req;
    };

    if (prewarm)
        for (size_t i = 0; i < mats.size(); ++i)
            service.call(makeReq(1000000 + i, i));

    std::mutex mu;
    std::vector<double> latencies;
    Row row;
    row.scenario = name;
    row.clients = clients;

    double t0 = monotonicSeconds();
    std::vector<std::thread> threads;
    for (unsigned c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            std::vector<double> local;
            for (unsigned i = 0; i < per_client; ++i) {
                uint64_t id = uint64_t(c) * per_client + i + 1;
                serve::ServeReply r =
                    service.call(makeReq(id, (c + i) % mats.size()));
                local.push_back(r.latency_ms);
                std::lock_guard<std::mutex> lock(mu);
                switch (r.status) {
                case serve::ServeStatus::Ok: ++row.ok; break;
                case serve::ServeStatus::Degraded: ++row.degraded; break;
                case serve::ServeStatus::Shed: ++row.shed; break;
                case serve::ServeStatus::Timeout: ++row.timeout; break;
                case serve::ServeStatus::Error: ++row.error; break;
                }
            }
            std::lock_guard<std::mutex> lock(mu);
            latencies.insert(latencies.end(), local.begin(), local.end());
        });
    }
    for (auto& t : threads)
        t.join();
    service.drain();
    row.wall_s = monotonicSeconds() - t0;

    row.requests = uint64_t(clients) * per_client;
    row.plans_per_sec =
        row.wall_s > 0 ? double(row.ok + row.degraded) / row.wall_s : 0;
    std::sort(latencies.begin(), latencies.end());
    row.p50_ms = percentile(latencies, 0.50);
    row.p99_ms = percentile(latencies, 0.99);
    serve::PlanCacheStats cs = service.cache().stats();
    uint64_t lookups = cs.hits + cs.misses + cs.shared_builds;
    row.cache_hit_rate = lookups ? double(cs.hits) / double(lookups) : 0;
    row.shed_rate =
        row.requests ? double(row.shed) / double(row.requests) : 0;
    service.stop();
    return row;
}

void
writeJson(const std::string& path, const std::vector<Row>& rows,
          bool smoke)
{
    std::ofstream out(path);
    HT_FATAL_IF(!out, "cannot open '", path, "' for writing");
    out << "{\n"
        << "  \"schema\": \"hottiles.bench_serving.v1\",\n"
        << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
        << "  \"metrics\": ";
    MetricsRegistry::global().writeJson(out);
    out << ",\n  \"results\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        out << "    {\"scenario\": \"" << r.scenario
            << "\", \"clients\": " << r.clients
            << ", \"requests\": " << r.requests
            << ", \"wall_s\": " << r.wall_s
            << ", \"plans_per_sec\": " << r.plans_per_sec
            << ", \"p50_ms\": " << r.p50_ms << ", \"p99_ms\": " << r.p99_ms
            << ", \"cache_hit_rate\": " << r.cache_hit_rate
            << ", \"shed_rate\": " << r.shed_rate << ", \"ok\": " << r.ok
            << ", \"degraded\": " << r.degraded << ", \"shed\": " << r.shed
            << ", \"timeout\": " << r.timeout
            << ", \"error\": " << r.error << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

} // namespace

int
main(int argc, char** argv)
{
    bench::init(&argc, argv);
    std::string out_path = "BENCH_serving.json";
    bool check = false;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--out") {
            HT_FATAL_IF(i + 1 >= argc, "missing value for --out");
            out_path = argv[++i];
        } else if (a == "--check") {
            check = true;
        } else {
            HT_FATAL("unknown option '", a, "'");
        }
    }

    bench::banner("bench_serving", "serving layer",
                  "Partition-plan service under closed-loop load "
                  "(docs/SERVING.md): plans/sec cold vs warm, latency "
                  "percentiles, shed rate, chaos terminality");

    // Plans must cost enough that the cache ratio measures plan
    // construction, not queue dispatch overhead — hence a non-trivial
    // structure even under --smoke.
    const bool smoke = bench::smokeMode();
    const Index rows_n = smoke ? 2048 : 6144;
    std::vector<std::shared_ptr<const CooMatrix>> mats;
    for (uint64_t seed : {11ull, 22ull, 33ull, 44ull})
        mats.push_back(std::make_shared<CooMatrix>(
            genCommunity(rows_n, 16.0, 32, 96, 0.8, seed)));

    // One-time process warmup (architecture calibration, allocator) so
    // the first scenario is not charged for it.
    {
        serve::ServiceConfig cfg;
        cfg.workers = 1;
        serve::PlanService warmup(cfg);
        serve::ServeRequest req;
        req.id = 1;
        req.matrix_data = mats[0];
        req.matrix = "#bench";
        req.mode = serve::RequestMode::Plan;
        warmup.call(req);
        warmup.stop();
    }

    const std::vector<unsigned> client_counts =
        smoke ? std::vector<unsigned>{1, 16}
              : std::vector<unsigned>{1, 4, 16, 64};
    const unsigned per_client = smoke ? 3 : 8;

    std::vector<Row> rows;
    double cold16 = 0, warm16 = 0;

    for (unsigned clients : client_counts) {
        serve::ServiceConfig cfg;
        cfg.workers = std::min(clients, 8u);
        cfg.queue_capacity = size_t(clients) + 8;
        cfg.default_deadline_ms = 60000;

        serve::ServiceConfig cold_cfg = cfg;
        cold_cfg.cache_capacity = 0;
        Row cold = runScenario("plan-cold", clients, per_client, cold_cfg,
                               serve::RequestMode::Plan, mats, false);
        Row warm = runScenario("plan-warm", clients, per_client, cfg,
                               serve::RequestMode::Plan, mats, true);
        if (clients == 16) {
            cold16 = cold.plans_per_sec;
            warm16 = warm.plans_per_sec;
        }
        rows.push_back(cold);
        rows.push_back(warm);
    }

    // Overload: one worker behind a two-slot queue, 16 impatient clients.
    {
        serve::ServiceConfig cfg;
        cfg.workers = 1;
        cfg.queue_capacity = 2;
        cfg.default_deadline_ms = 60000;
        rows.push_back(runScenario("overload", 16, per_client, cfg,
                                   serve::RequestMode::Plan, mats, true));
    }

    // Chaos: every fault class enabled, run mode (executes for real).
    {
        serve::ServiceConfig cfg;
        cfg.workers = 8;
        cfg.queue_capacity = 24;
        cfg.default_deadline_ms = smoke ? 2000 : 5000;
        cfg.chaos.seed = 0xC0FFEE;
        rows.push_back(runScenario("chaos", smoke ? 8u : 16u,
                                   smoke ? 2u : 4u, cfg,
                                   serve::RequestMode::Run, mats, false));
    }

    // Delta frames: one live session absorbing structural batches vs a
    // cold service re-planning each patched matrix from scratch.  The
    // whole point of cmd=delta is that patching the cached plan in
    // place beats invalidate-and-rebuild by a wide margin.
    double delta_mean_ms = 0, rebuild_mean_ms = 0;
    uint64_t delta_checksum = 0, rebuild_checksum = 0;
    {
        const unsigned rounds = smoke ? 4 : 8;
        const size_t batch_n = smoke ? 2 : 4;

        serve::ServiceConfig cfg;
        cfg.workers = 1;
        cfg.default_deadline_ms = 60000;
        serve::PlanService live(cfg);

        // The patch-vs-rebuild ratio only means something when the full
        // scan -> model -> partition pipeline costs real time, so this
        // scenario uses a much larger matrix than the throughput sweep
        // (the bench_incremental RMAT shape, where a small delta dirties
        // well under 1% of the tiles).
        const Index drows = Index(1) << (smoke ? 17 : 18);
        auto cur = std::make_shared<CooMatrix>(
            genRmat(drows, size_t(16) * drows, 0.57, 0.19, 0.19, 0.05, 55));
        auto sessionPlan = [&](uint64_t id) {
            serve::ServeRequest req;
            req.id = id;
            req.matrix_data = cur;
            req.matrix = "#bench-delta";
            req.session = "bench-delta";
            req.mode = serve::RequestMode::Plan;
            req.kernel.k = 8;
            req.deadline_ms = 60000;
            return req;
        };
        serve::ServeReply created = live.call(sessionPlan(1));
        HT_FATAL_IF(created.status != serve::ServeStatus::Ok,
                    "delta scenario: session creation failed (",
                    created.detail, ")");

        // Untimed warmup delta: the first patch seeds the partition
        // sweep cache at full cost (see bench_incremental), which is a
        // one-time charge the steady state never pays again.
        {
            DeltaBatch warm = genDeltaBatch(*cur, batch_n, batch_n, 899);
            auto frame = std::make_shared<serve::DeltaFrame>();
            frame->batch = warm;
            serve::ServeRequest req;
            req.id = 99;
            req.session = "bench-delta";
            req.mode = serve::RequestMode::Delta;
            req.kernel.k = 8;
            req.deadline_ms = 60000;
            req.delta = frame;
            serve::ServeReply rep = live.call(req);
            HT_FATAL_IF(rep.status != serve::ServeStatus::Ok,
                        "delta scenario: warmup delta failed (",
                        rep.detail, ")");
            cur = std::make_shared<CooMatrix>(applyDeltaToCoo(*cur, warm));
        }

        Row drow;
        drow.scenario = "delta-patch";
        drow.clients = 1;
        drow.requests = rounds;
        std::vector<std::shared_ptr<const CooMatrix>> patched;
        std::vector<double> dlat;
        double t0 = monotonicSeconds();
        for (unsigned r = 0; r < rounds; ++r) {
            DeltaBatch batch =
                genDeltaBatch(*cur, batch_n, batch_n, 900 + r);
            auto frame = std::make_shared<serve::DeltaFrame>();
            frame->batch = batch;
            serve::ServeRequest req;
            req.id = 100 + r;
            req.session = "bench-delta";
            req.mode = serve::RequestMode::Delta;
            req.kernel.k = 8;
            req.deadline_ms = 60000;
            req.delta = frame;
            double d0 = monotonicSeconds();
            serve::ServeReply rep = live.call(req);
            dlat.push_back((monotonicSeconds() - d0) * 1e3);
            if (rep.status == serve::ServeStatus::Ok)
                ++drow.ok;
            else
                ++drow.error;
            // Client-side bookkeeping of the patched matrix (untimed):
            // the cold baseline below re-plans these from scratch.
            cur = std::make_shared<CooMatrix>(applyDeltaToCoo(*cur, batch));
            patched.push_back(cur);
        }
        drow.wall_s = monotonicSeconds() - t0;
        delta_checksum = live.call(sessionPlan(2)).checksum;
        live.stop();
        for (double l : dlat)
            delta_mean_ms += l;
        delta_mean_ms /= double(dlat.size());
        drow.plans_per_sec =
            drow.wall_s > 0 ? double(drow.ok) / drow.wall_s : 0;
        std::sort(dlat.begin(), dlat.end());
        drow.p50_ms = percentile(dlat, 0.50);
        drow.p99_ms = percentile(dlat, 0.99);
        rows.push_back(drow);

        serve::ServiceConfig ccfg;
        ccfg.workers = 1;
        ccfg.cache_capacity = 0;  // every plan built from scratch
        ccfg.default_deadline_ms = 60000;
        serve::PlanService cold(ccfg);
        Row crow;
        crow.scenario = "delta-cold-rebuild";
        crow.clients = 1;
        crow.requests = rounds;
        std::vector<double> clat;
        t0 = monotonicSeconds();
        for (size_t i = 0; i < patched.size(); ++i) {
            serve::ServeRequest req;
            req.id = 200 + i;
            req.matrix_data = patched[i];
            req.matrix = "#bench-delta";
            req.mode = serve::RequestMode::Plan;
            req.kernel.k = 8;
            req.deadline_ms = 60000;
            double c0 = monotonicSeconds();
            serve::ServeReply rep = cold.call(req);
            clat.push_back((monotonicSeconds() - c0) * 1e3);
            if (rep.status == serve::ServeStatus::Ok)
                ++crow.ok;
            else
                ++crow.error;
            if (i + 1 == patched.size())
                rebuild_checksum = rep.checksum;
        }
        crow.wall_s = monotonicSeconds() - t0;
        cold.stop();
        for (double l : clat)
            rebuild_mean_ms += l;
        rebuild_mean_ms /= double(clat.size());
        crow.plans_per_sec =
            crow.wall_s > 0 ? double(crow.ok) / crow.wall_s : 0;
        std::sort(clat.begin(), clat.end());
        crow.p50_ms = percentile(clat, 0.50);
        crow.p99_ms = percentile(clat, 0.99);
        rows.push_back(crow);
    }

    // Coalescing: one worker pinned by a blocker request, then N
    // structurally identical Run requests — the first becomes the
    // queued leader, the other N-1 must join it and share one build
    // and one execution.
    uint64_t co_joined = 0, co_builds = 0, co_flagged = 0;
    bool co_checksums_equal = true;
    unsigned co_twins = 0;
    {
        const unsigned twins = smoke ? 8 : 16;
        co_twins = twins;
        serve::ServiceConfig cfg;
        cfg.workers = 1;
        cfg.queue_capacity = size_t(twins) + 8;
        cfg.default_deadline_ms = 60000;
        serve::PlanService service(cfg);

        std::mutex mu;
        std::condition_variable cv;
        unsigned pending = 0;
        std::vector<serve::ServeReply> replies;
        auto submit = [&](serve::ServeRequest req) {
            {
                std::lock_guard<std::mutex> lock(mu);
                ++pending;
            }
            service.submit(std::move(req),
                           [&](const serve::ServeReply& r) {
                               std::lock_guard<std::mutex> lock(mu);
                               replies.push_back(r);
                               --pending;
                               cv.notify_all();
                           });
        };

        Row corow;
        corow.scenario = "coalesce";
        corow.clients = 1;
        corow.requests = uint64_t(twins) + 1;
        double t0 = monotonicSeconds();

        serve::ServeRequest blocker;
        blocker.id = 1;
        blocker.matrix_data = mats[1];
        blocker.matrix = "#bench-blocker";
        blocker.mode = serve::RequestMode::Run;
        blocker.kernel.k = 8;
        blocker.deadline_ms = 60000;
        submit(blocker);
        for (unsigned i = 0; i < twins; ++i) {
            serve::ServeRequest req;
            req.id = 10 + i;
            req.matrix_data = mats[0];
            req.matrix = "#bench-coalesce";
            req.mode = serve::RequestMode::Run;
            req.kernel.k = 8;
            req.seed = 7;
            req.deadline_ms = 60000;
            submit(req);
        }
        {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock, [&] { return pending == 0; });
        }
        corow.wall_s = monotonicSeconds() - t0;

        serve::ServiceStats st = service.stats();
        co_joined = st.coalesced;
        co_builds = st.cache.misses;  // blocker's + the twins' leader's
        uint64_t ck = 0;
        bool first = true;
        std::vector<double> lats;
        for (const serve::ServeReply& r : replies) {
            lats.push_back(r.latency_ms);
            switch (r.status) {
            case serve::ServeStatus::Ok: ++corow.ok; break;
            case serve::ServeStatus::Degraded: ++corow.degraded; break;
            case serve::ServeStatus::Shed: ++corow.shed; break;
            case serve::ServeStatus::Timeout: ++corow.timeout; break;
            case serve::ServeStatus::Error: ++corow.error; break;
            }
            if (r.id < 10)
                continue;  // the blocker is not a twin
            if (first) {
                ck = r.checksum;
                first = false;
            } else if (r.checksum != ck) {
                co_checksums_equal = false;
            }
            if (r.coalesced)
                ++co_flagged;
        }
        service.stop();
        corow.plans_per_sec = corow.wall_s > 0
                                  ? double(corow.ok + corow.degraded) /
                                        corow.wall_s
                                  : 0;
        std::sort(lats.begin(), lats.end());
        corow.p50_ms = percentile(lats, 0.50);
        corow.p99_ms = percentile(lats, 0.99);
        rows.push_back(corow);
    }

    Table table({"Scenario", "Clients", "Requests", "Plans/s", "p50 ms",
                 "p99 ms", "Hit rate", "Shed rate"});
    for (const Row& r : rows)
        table.addRow({r.scenario, std::to_string(r.clients),
                      std::to_string(r.requests),
                      Table::num(r.plans_per_sec, 1),
                      Table::num(r.p50_ms, 2), Table::num(r.p99_ms, 2),
                      Table::num(r.cache_hit_rate, 2),
                      Table::num(r.shed_rate, 2)});
    table.print(std::cout);
    if (cold16 > 0)
        std::cout << "warm/cold plans-per-sec ratio at 16 clients: "
                  << Table::num(warm16 / cold16, 1) << "x\n";
    if (delta_mean_ms > 0)
        std::cout << "delta patch " << Table::num(delta_mean_ms, 2)
                  << " ms vs cold rebuild "
                  << Table::num(rebuild_mean_ms, 2) << " ms: "
                  << Table::num(rebuild_mean_ms / delta_mean_ms, 1)
                  << "x\n";
    std::cout << "coalesce: " << co_joined << "/" << co_twins - 1
              << " twins joined the leader, " << co_builds
              << " build(s) total\n";

    writeJson(out_path, rows, smoke);
    std::cout << "wrote " << out_path << "\n";

    if (check) {
        std::vector<std::string> failures;
        if (cold16 > 0 && warm16 < 5.0 * cold16)
            failures.push_back(
                "warm plan throughput at 16 clients below 5x cold (" +
                Table::num(warm16 / cold16, 2) + "x)");
        for (const Row& r : rows) {
            uint64_t terminal =
                r.ok + r.degraded + r.shed + r.timeout + r.error;
            if (terminal != r.requests)
                failures.push_back(r.scenario + ": lost requests (" +
                                   std::to_string(terminal) + "/" +
                                   std::to_string(r.requests) + ")");
            if (r.scenario == "chaos" && r.error != 0)
                failures.push_back("chaos: unexpected ERROR replies");
            if (r.scenario == "overload" && r.shed == 0)
                failures.push_back("overload: nothing was shed");
            if (r.scenario != "overload" && r.scenario != "chaos" &&
                (r.shed != 0 || r.error != 0))
                failures.push_back(r.scenario +
                                   ": unexpected shed/error replies");
        }
        if (delta_mean_ms <= 0 ||
            rebuild_mean_ms < 3.0 * delta_mean_ms)
            failures.push_back(
                "delta round trip below 3x cold re-plan (" +
                Table::num(delta_mean_ms > 0
                               ? rebuild_mean_ms / delta_mean_ms
                               : 0,
                           2) +
                "x)");
        if (delta_checksum != rebuild_checksum)
            failures.push_back(
                "delta-patched plan checksum diverged from the cold "
                "rebuild");
        if (co_joined != co_twins - 1)
            failures.push_back("coalesce: " + std::to_string(co_joined) +
                               " twins joined, expected " +
                               std::to_string(co_twins - 1));
        if (co_builds > 2)
            failures.push_back(
                "coalesce: identical twins triggered " +
                std::to_string(co_builds) + " builds (cap 2 incl. "
                "blocker)");
        if (co_flagged != co_twins - 1)
            failures.push_back(
                "coalesce: fanned-out replies not flagged coalesced");
        if (!co_checksums_equal)
            failures.push_back(
                "coalesce: twin checksums diverged from the leader");
        if (!failures.empty()) {
            for (const auto& f : failures)
                std::cerr << "CHECK FAILED: " << f << "\n";
            return 1;
        }
        std::cout << "all serving checks passed\n";
    }
    return 0;
}
