#include "bench_util.hpp"

#include <cstdlib>
#include <iostream>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/string_util.hpp"
#include "common/thread_pool.hpp"
#include "sparse/generators.hpp"

namespace hottiles::bench {

namespace {

bool g_smoke = false;

} // namespace

void
init(int* argc, char** argv)
{
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        std::string_view a = argv[i];
        if (a == "--smoke") {
            g_smoke = true;
        } else if (a == "--threads") {
            if (i + 1 >= *argc)
                HT_FATAL("missing value for --threads");
            ThreadPool::setGlobalThreads(static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10)));
        } else {
            argv[out++] = argv[i];
        }
    }
    *argc = out;
}

bool
smokeMode()
{
    return g_smoke;
}

void
banner(const std::string& experiment, const std::string& paper_ref,
       const std::string& description)
{
    std::cout << "\n==============================================================\n"
              << experiment << "  (" << paper_ref << ")\n"
              << description << "\n"
              << "==============================================================\n";
}

namespace {

std::vector<std::string>
filterFromEnv(std::vector<std::string> names)
{
    if (g_smoke)
        return {"smoke"};
    const char* env = std::getenv("HT_BENCH_MATRICES");
    if (!env || !*env)
        return names;
    std::vector<std::string> out;
    for (std::string_view tok : splitChar(env, ',')) {
        std::string name(trim(tok));
        for (const auto& n : names)
            if (n == name)
                out.push_back(name);
    }
    return out.empty() ? names : out;
}

} // namespace

std::vector<std::string>
tableVNames()
{
    std::vector<std::string> names;
    for (const auto& e : tableV())
        names.push_back(e.name);
    return filterFromEnv(std::move(names));
}

std::vector<std::string>
tableVIIINames()
{
    std::vector<std::string> names;
    for (const auto& e : tableVIII())
        names.push_back(e.name);
    return filterFromEnv(std::move(names));
}

const CooMatrix&
suiteMatrix(const std::string& name)
{
    if (g_smoke) {
        // One tiny deterministic matrix stands in for every suite name
        // so smoke runs exercise the full pipeline in seconds.
        static CooMatrix tiny = genCommunity(1024, 12.0, 32, 128, 0.8, 7);
        return tiny;
    }
    static std::map<std::string, CooMatrix> cache;
    auto it = cache.find(name);
    if (it == cache.end())
        it = cache.emplace(name, makeSuiteMatrix(name)).first;
    return it->second;
}

const TileGrid&
suiteGrid(const std::string& name, Index tile_h, Index tile_w)
{
    static std::map<std::string, TileGrid> cache;
    std::string key =
        name + "/" + std::to_string(tile_h) + "x" + std::to_string(tile_w);
    auto it = cache.find(key);
    if (it == cache.end())
        it = cache.emplace(key, TileGrid(suiteMatrix(name), tile_h, tile_w))
                 .first;
    return it->second;
}

std::vector<MatrixEvaluation>
evaluateSuite(const Architecture& arch, const std::vector<std::string>& names,
              const HotTilesOptions& opts)
{
    std::vector<MatrixEvaluation> out;
    out.reserve(names.size());
    for (const auto& name : names)
        out.push_back(evaluateMatrix(arch, suiteMatrix(name), name, opts));
    return out;
}

double
geomeanOver(const std::vector<MatrixEvaluation>& evs,
            const std::function<double(const MatrixEvaluation&)>& f)
{
    GeoMean g;
    for (const auto& ev : evs)
        g.add(f(ev));
    return g.value();
}

double
speedup(double baseline_cycles, double cycles)
{
    HT_ASSERT(cycles > 0, "zero runtime");
    return baseline_cycles / cycles;
}

} // namespace hottiles::bench
