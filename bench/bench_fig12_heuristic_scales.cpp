/**
 * @file
 * Fig 12 reproduction: the four HotTiles heuristics across SPADE-Sextans
 * system scales 1/2/4/8.  For each scale we report the geomean speedup
 * over BestHomogeneous of (a) each heuristic applied alone and (b) the
 * HotTiles selector, plus the average bandwidth utilization of the
 * homogeneous runs.  Paper shape: HotTiles beats the best single
 * heuristic at every scale; Parallel heuristics win at small scales
 * (low bandwidth pressure), Serial/MinByte at large ones.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/hottiles.hpp"

using namespace hottiles;
using namespace hottiles::bench;

int
main(int argc, char** argv)
{
    init(&argc, argv);
    banner("Figure 12", "HPCA'24 HotTiles, Fig 12",
           "Per-heuristic performance across system scales");

    const std::vector<Heuristic> hs = {
        Heuristic::MinTimeParallel, Heuristic::MinTimeSerial,
        Heuristic::MinByteParallel, Heuristic::MinByteSerial};

    Table t({"Scale", "MinTime Par", "MinTime Ser", "MinByte Par",
             "MinByte Ser", "HotTiles", "Homog. BW (GB/s)"});
    for (int scale : spadeSextansScales()) {
        Architecture arch = calibrated(makeSpadeSextans(scale));
        std::vector<GeoMean> heur_speedup(hs.size());
        GeoMean selector_speedup;
        Summary bw;
        for (const auto& name : tableVNames()) {
            const CooMatrix& m = suiteMatrix(name);
            HotTilesOptions opts;
            opts.build_formats = false;
            HotTiles ht(arch, m, opts);

            auto hot = simulateHomogeneous(arch, ht.grid(), true,
                                           opts.kernel).stats;
            auto cold = simulateHomogeneous(arch, ht.grid(), false,
                                            opts.kernel).stats;
            bw.add(hot.avg_bw_gbps);
            bw.add(cold.avg_bw_gbps);
            double best_hom = double(std::min(hot.cycles, cold.cycles));

            for (size_t h = 0; h < hs.size(); ++h) {
                Partition p = runHeuristic(ht.context(), hs[h]);
                double cycles = double(
                    simulateExecution(arch, ht.grid(), p.is_hot, p.serial,
                                      opts.kernel).stats.cycles);
                heur_speedup[h].add(best_hom / cycles);
            }
            const Partition& sel = ht.partition();
            double cycles = double(
                simulateExecution(arch, ht.grid(), sel.is_hot, sel.serial,
                                  opts.kernel).stats.cycles);
            selector_speedup.add(best_hom / cycles);
        }
        t.addRow({std::to_string(scale),
                  Table::num(heur_speedup[0].value(), 2),
                  Table::num(heur_speedup[1].value(), 2),
                  Table::num(heur_speedup[2].value(), 2),
                  Table::num(heur_speedup[3].value(), 2),
                  Table::num(selector_speedup.value(), 2),
                  Table::num(bw.mean(), 1)});
    }
    std::cout << "\nGeomean speedup over BestHomogeneous (Table V set):\n";
    t.print(std::cout);
    std::cout << "(paper averages across scales: 16.8x vs HotOnly, 2.0x vs "
                 "ColdOnly,\n 2.2x vs IUnaware, 1.3x vs BestHomogeneous; "
                 "HotTiles >= best heuristic)\n";
    return 0;
}
