/**
 * @file
 * Fig 18 reproduction: preprocessing cost breakdown on the host for the
 * PIUMA architecture — matrix format creation for one worker type (what
 * any homogeneous accelerator pays) vs the HotTiles-specific stages
 * (matrix scan, model evaluation, partitioning, the second format).
 * Paper: HotTiles overhead averages 73% of total preprocessing (~4x a
 * homogeneous flow), amortized over many SpMM iterations, and only +6%
 * once reading the matrix from disk is included.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/hottiles.hpp"

using namespace hottiles;
using namespace hottiles::bench;

int
main()
{
    banner("Figure 18", "HPCA'24 HotTiles, Fig 18",
           "Preprocessing cost breakdown (PIUMA flow, host wall-clock)");

    Architecture arch = calibrated(makePiuma());
    Table t({"Matrix", "Scan ms", "Model ms", "Partition ms",
             "Base format ms", "Extra format ms", "HotTiles overhead %"});
    Summary overhead_pct;
    for (const auto& name : tableVNames()) {
        HotTilesOptions opts;  // formats built: Fig 18 measures them
        HotTiles ht(arch, suiteMatrix(name), opts);
        const PreprocessTiming& pt = ht.timing();
        overhead_pct.add(100.0 * pt.overheadFraction());
        t.addRow({name, Table::num(pt.scan_s * 1e3, 2),
                  Table::num(pt.model_s * 1e3, 2),
                  Table::num(pt.partition_s * 1e3, 2),
                  Table::num(pt.format_base_s * 1e3, 2),
                  Table::num(pt.format_extra_s * 1e3, 2),
                  Table::num(100.0 * pt.overheadFraction(), 1)});
    }
    t.print(std::cout);
    std::cout << "\naverage HotTiles-specific share of preprocessing: "
              << Table::num(overhead_pct.mean(), 1)
              << "% (paper: 73%)\n"
              << "The overhead is a one-time cost amortized over many "
                 "SpMM iterations (GNN training/inference).\n";
    return 0;
}
