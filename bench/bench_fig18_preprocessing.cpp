/**
 * @file
 * Fig 18 reproduction: preprocessing cost breakdown on the host for the
 * PIUMA architecture — matrix format creation for one worker type (what
 * any homogeneous accelerator pays) vs the HotTiles-specific stages
 * (matrix scan, model evaluation, partitioning, the second format).
 * Paper: HotTiles overhead averages 73% of total preprocessing (~4x a
 * homogeneous flow), amortized over many SpMM iterations, and only +6%
 * once reading the matrix from disk is included.
 */

#include <cstring>
#include <iostream>

#include "bench_util.hpp"
#include "common/rss.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/hottiles.hpp"

using namespace hottiles;
using namespace hottiles::bench;

namespace {

// The five stages this table breaks out into their own columns.  Any
// stage PreprocessTiming::stages() reports beyond these (e.g. "update")
// lands in the "Other ms" column instead of being silently dropped.
constexpr const char* kKnownStages[] = {"scan", "model", "partition",
                                        "format_base", "format_extra"};

double
stageSeconds(const PreprocessTiming& pt, const char* name)
{
    for (const PreprocessStage& s : pt.stages())
        if (std::strcmp(s.name, name) == 0) return s.seconds;
    return 0.0;
}

double
otherSeconds(const PreprocessTiming& pt)
{
    double other = 0;
    for (const PreprocessStage& s : pt.stages()) {
        bool known = false;
        for (const char* k : kKnownStages)
            known = known || std::strcmp(s.name, k) == 0;
        if (!known) other += s.seconds;
    }
    return other;
}

double
totalSeconds(const PreprocessTiming& pt)
{
    return pt.total();
}

} // namespace

int
main(int argc, char** argv)
{
    init(&argc, argv);
    banner("Figure 18", "HPCA'24 HotTiles, Fig 18",
           "Preprocessing cost breakdown (PIUMA flow, host wall-clock)");

    Architecture arch = calibrated(makePiuma());
    const unsigned pool_threads = ThreadPool::globalThreads();
    Table t({"Matrix", "Scan ms", "Model ms", "Partition ms",
             "Base format ms", "Extra format ms", "Other ms",
             "HotTiles overhead %", "Serial ms", "Par ms", "Par speedup",
             "Peak RSS MiB"});
    Summary overhead_pct;
    Summary par_speedup;
    for (const auto& name : tableVNames()) {
        HotTilesOptions opts;  // formats built: Fig 18 measures them

        // Same pipeline at one thread: the serial preprocessing baseline.
        ThreadPool::setGlobalThreads(1);
        double serial_s;
        {
            HotTiles serial_ht(arch, suiteMatrix(name), opts);
            serial_s = totalSeconds(serial_ht.timing());
        }
        ThreadPool::setGlobalThreads(pool_threads);

        HotTiles ht(arch, suiteMatrix(name), opts);
        const PreprocessTiming& pt = ht.timing();
        const double par_s = totalSeconds(pt);
        overhead_pct.add(100.0 * pt.overheadFraction());
        par_speedup.add(serial_s / par_s);
        t.addRow({name, Table::num(stageSeconds(pt, "scan") * 1e3, 2),
                  Table::num(stageSeconds(pt, "model") * 1e3, 2),
                  Table::num(stageSeconds(pt, "partition") * 1e3, 2),
                  Table::num(stageSeconds(pt, "format_base") * 1e3, 2),
                  Table::num(stageSeconds(pt, "format_extra") * 1e3, 2),
                  Table::num(otherSeconds(pt) * 1e3, 2),
                  Table::num(100.0 * pt.overheadFraction(), 1),
                  Table::num(serial_s * 1e3, 2),
                  Table::num(par_s * 1e3, 2),
                  Table::num(serial_s / par_s, 2),
                  // Process-lifetime high-water mark after this build
                  // (monotone across rows; docs/OUTOFCORE.md discusses
                  // the O(panel) streamed alternative).
                  Table::num(double(recordPeakRss()) / (1024.0 * 1024.0),
                             1)});
    }
    t.print(std::cout);
    std::cout << "\naverage HotTiles-specific share of preprocessing: "
              << Table::num(overhead_pct.mean(), 1)
              << "% (paper: 73%)\n"
              << "average parallel preprocessing speedup at "
              << pool_threads << " threads: "
              << Table::num(par_speedup.mean(), 2) << "x\n"
              << "The overhead is a one-time cost amortized over many "
                 "SpMM iterations (GNN training/inference).\n";
    return 0;
}
