/**
 * @file
 * Fig 11 reproduction: homogeneous vs heterogeneous execution on PIUMA
 * (4 MTPs cold + 2 STPs hot, CSR formats, fp64, atomic engine).
 * Paper headline: HotTiles averages 9.2x / 1.4x / 1.4x over HotOnly /
 * ColdOnly / IUnaware, and 1.4x over BestHomogeneous.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

using namespace hottiles;
using namespace hottiles::bench;

int
main(int argc, char** argv)
{
    init(&argc, argv);
    banner("Figure 11", "HPCA'24 HotTiles, Fig 11",
           "Strategy comparison on PIUMA (Table V set)");

    Architecture arch = calibrated(makePiuma());
    auto evs = evaluateSuite(arch, tableVNames());

    Table t({"Matrix", "HotOnly", "ColdOnly", "BestHom", "IUnaware",
             "HotTiles"});
    GeoMean vs_hot;
    GeoMean vs_cold;
    GeoMean vs_iu;
    GeoMean vs_best;
    for (const auto& ev : evs) {
        double ht = ev.hottiles.cycles();
        vs_hot.add(speedup(ev.hot_only.cycles(), ht));
        vs_cold.add(speedup(ev.cold_only.cycles(), ht));
        vs_iu.add(speedup(ev.iunaware.cycles(), ht));
        vs_best.add(speedup(ev.bestHomogeneousCycles(), ht));
        double worst = ev.worstHomogeneousCycles();
        t.addRow({ev.matrix, Table::num(worst / ev.hot_only.cycles(), 2),
                  Table::num(worst / ev.cold_only.cycles(), 2),
                  Table::num(worst / ev.bestHomogeneousCycles(), 2),
                  Table::num(worst / ev.iunaware.cycles(), 2),
                  Table::num(worst / ht, 2)});
    }
    std::cout << "\nSpeedup over the worst homogeneous execution:\n";
    t.print(std::cout);

    Table g({"HotTiles speedup over", "Measured (geomean)", "Paper"});
    g.addRow({"HotOnly", Table::num(vs_hot.value(), 2), "9.2x"});
    g.addRow({"ColdOnly", Table::num(vs_cold.value(), 2), "1.4x"});
    g.addRow({"IUnaware", Table::num(vs_iu.value(), 2), "1.4x"});
    g.addRow({"BestHomogeneous", Table::num(vs_best.value(), 2), "1.4x"});
    std::cout << "\n";
    g.print(std::cout);
    return 0;
}
