/**
 * @file
 * Simulator hot-loop throughput harness: times the event core in
 * events/second per (matrix, strategy) over the Table V proxies, for
 * both queue engines (the calendar/slab default and the legacy
 * std::function binary heap kept for equivalence testing), and emits
 * machine-readable BENCH_sim_perf.json so the repo tracks its perf
 * trajectory across PRs.
 *
 * Events/sec is measured over the event loop proper (SimStats::loop_ms,
 * the runUntilEmpty phase), not the whole simulateExecution call, so
 * format/segment building does not dilute the metric the event-core
 * work targets.  Whole-run wall time is reported alongside.
 *
 * The throughput metric counts *retired* events — scheduler pops plus
 * completions that piggy-backed on a coalesced event (batched_events) —
 * so it measures simulation work per second and is invariant to how
 * many completions share one queue entry.  Raw pops are still emitted
 * per record ("events"); the pre-PR tree never coalesced, so its event
 * count is its retired count and the comparison is apples-to-apples.
 * Rows with fewer than 500 events time as microsecond-scale noise and
 * are excluded from the geomean summary lines (they stay in the JSON).
 *
 * Flags (besides the shared --smoke / --threads):
 *   --out FILE        JSON output path (default BENCH_sim_perf.json)
 *   --check FILE      compare against a checked-in baseline JSON and
 *                     fail (exit 1) if the calendar/legacy events-per-
 *                     second ratio of any (matrix, strategy) regressed
 *                     by more than the tolerance.  The ratio is
 *                     machine-independent, unlike absolute events/sec.
 *   --tolerance F     allowed relative regression (default 0.30)
 *   --prepr-csv FILE  merge pre-PR numbers (CSV columns matrix,
 *                     strategy,wall_ms,sim_cycles,loop_ms,events,
 *                     measured on the pre-overhaul tree with the same
 *                     loop instrumentation) into the report as
 *                     prepr_* / *_speedup fields
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "bench_util.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/table.hpp"
#include "core/calibrate.hpp"
#include "core/hottiles.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/worklist.hpp"

using namespace hottiles;

namespace {

struct Record
{
    std::string matrix;
    std::string strategy;
    std::string impl;
    uint64_t events = 0;
    double wall_ms = 0;  //!< whole simulateExecution call, rep average
    double loop_ms = 0;  //!< event-loop portion, rep average
    double events_per_sec = 0;  //!< retired events (pops + batched) / loop_ms
    uint64_t sim_cycles = 0;
    uint64_t batched_events = 0;
    uint64_t peak_queue_depth = 0;
};

/** One pre-PR measurement row (zeroed when no --prepr-csv was given). */
struct PreprRow
{
    double wall_ms = 0;
    double loop_ms = 0;
    uint64_t events = 0;
    double eventsPerSec() const
    {
        return loop_ms > 0 ? double(events) / (loop_ms / 1e3) : 0;
    }
};

const char*
implName(EventQueue::Impl impl)
{
    return impl == EventQueue::Impl::Calendar ? "calendar" : "legacy-heap";
}

/** RAII restore of the process-wide default queue engine. */
struct ImplGuard
{
    EventQueue::Impl saved = EventQueue::defaultImpl();
    ~ImplGuard() { EventQueue::setDefaultImpl(saved); }
};

std::map<std::pair<std::string, std::string>, PreprRow>
readPreprCsv(const std::string& path)
{
    std::map<std::pair<std::string, std::string>, PreprRow> out;
    std::ifstream in(path);
    HT_FATAL_IF(!in, "cannot open --prepr-csv file '", path, "'");
    std::string line;
    std::getline(in, line);  // header
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string matrix, strategy, wall, cycles, loop, events;
        if (!std::getline(ls, matrix, ',') ||
            !std::getline(ls, strategy, ',') ||
            !std::getline(ls, wall, ',') ||
            !std::getline(ls, cycles, ',') ||
            !std::getline(ls, loop, ',') || !std::getline(ls, events, ','))
            continue;
        PreprRow row;
        row.wall_ms = std::strtod(wall.c_str(), nullptr);
        row.loop_ms = std::strtod(loop.c_str(), nullptr);
        row.events = std::strtoull(events.c_str(), nullptr, 10);
        out[{matrix, strategy}] = row;
    }
    return out;
}

void
writeJson(const std::string& path, const std::vector<Record>& records,
          const std::map<std::pair<std::string, std::string>, PreprRow>&
              prepr,
          bool smoke, double geomean_engine_speedup,
          double geomean_loop_speedup, double geomean_wall_speedup)
{
    std::ofstream out(path);
    HT_FATAL_IF(!out, "cannot open '", path, "' for writing");
    out << "{\n"
        << "  \"schema\": \"hottiles.bench_sim_perf.v1\",\n"
        << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
        << "  \"geomean_calendar_vs_legacy_events_per_sec\": "
        << geomean_engine_speedup << ",\n";
    if (!prepr.empty())
        out << "  \"geomean_events_per_sec_speedup_vs_prepr\": "
            << geomean_loop_speedup << ",\n"
            << "  \"geomean_wall_speedup_vs_prepr\": "
            << geomean_wall_speedup << ",\n";
    // Registry snapshot: phase timers (preprocess.*, format.*) and any
    // counters the run populated, so the perf trajectory file also
    // tracks where preprocessing time goes.
    out << "  \"metrics\": ";
    MetricsRegistry::global().writeJson(out);
    out << ",\n  \"results\": [\n";
    for (size_t i = 0; i < records.size(); ++i) {
        const Record& r = records[i];
        out << "    {\"matrix\": \"" << r.matrix << "\", \"strategy\": \""
            << r.strategy << "\", \"impl\": \"" << r.impl
            << "\", \"events\": " << r.events << ", \"wall_ms\": "
            << r.wall_ms << ", \"loop_ms\": " << r.loop_ms
            << ", \"events_per_sec\": " << r.events_per_sec
            << ", \"sim_cycles\": " << r.sim_cycles
            << ", \"batched_events\": " << r.batched_events
            << ", \"peak_queue_depth\": " << r.peak_queue_depth;
        auto it = prepr.find({r.matrix, r.strategy});
        if (it != prepr.end() && r.impl == "calendar") {
            const PreprRow& p = it->second;
            out << ", \"prepr_events\": " << p.events
                << ", \"prepr_loop_ms\": " << p.loop_ms
                << ", \"prepr_wall_ms\": " << p.wall_ms
                << ", \"events_per_sec_speedup\": "
                << (p.eventsPerSec() > 0
                        ? r.events_per_sec / p.eventsPerSec()
                        : 0)
                << ", \"wall_speedup\": "
                << (p.wall_ms > 0 ? p.wall_ms / r.wall_ms : 0);
        }
        out << "}" << (i + 1 < records.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

// -- Minimal parser for our own baseline JSON (no JSON library in the
// -- toolchain).  Scans the "results" array object by object and pulls
// -- the fields the regression check needs.

std::string
extractString(const std::string& obj, const std::string& key)
{
    const std::string pat = "\"" + key + "\": \"";
    const size_t p = obj.find(pat);
    HT_FATAL_IF(p == std::string::npos, "baseline JSON misses key ", key);
    const size_t b = p + pat.size();
    const size_t e = obj.find('"', b);
    return obj.substr(b, e - b);
}

double
extractNumber(const std::string& obj, const std::string& key)
{
    const std::string pat = "\"" + key + "\": ";
    const size_t p = obj.find(pat);
    HT_FATAL_IF(p == std::string::npos, "baseline JSON misses key ", key);
    return std::strtod(obj.c_str() + p + pat.size(), nullptr);
}

std::map<std::tuple<std::string, std::string, std::string>, double>
readBaselineEps(const std::string& path)
{
    std::ifstream in(path);
    HT_FATAL_IF(!in, "cannot open baseline '", path, "'");
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    std::map<std::tuple<std::string, std::string, std::string>, double> out;
    size_t pos = text.find("\"results\"");
    HT_FATAL_IF(pos == std::string::npos, "baseline JSON has no results");
    while ((pos = text.find('{', pos + 1)) != std::string::npos) {
        const size_t end = text.find('}', pos);
        if (end == std::string::npos)
            break;
        const std::string obj = text.substr(pos, end - pos + 1);
        out[{extractString(obj, "matrix"), extractString(obj, "strategy"),
             extractString(obj, "impl")}] =
            extractNumber(obj, "events_per_sec");
        pos = end;
    }
    return out;
}

int
checkAgainstBaseline(const std::vector<Record>& records,
                     const std::string& path, double tolerance)
{
    auto baseline = readBaselineEps(path);
    auto epsOf = [&](const std::vector<Record>& rs, const std::string& m,
                     const std::string& s, const char* impl) -> double {
        for (const Record& r : rs)
            if (r.matrix == m && r.strategy == s && r.impl == impl)
                return r.events_per_sec;
        return 0;
    };
    int failures = 0;
    for (const Record& r : records) {
        if (r.impl != "calendar")
            continue;
        // Sub-millisecond runs (tiny event counts) time as pure noise;
        // they cannot support a regression verdict.
        if (r.events < 500)
            continue;
        const double legacy =
            epsOf(records, r.matrix, r.strategy, "legacy-heap");
        auto cal_it = baseline.find({r.matrix, r.strategy, "calendar"});
        auto leg_it = baseline.find({r.matrix, r.strategy, "legacy-heap"});
        if (legacy <= 0 || cal_it == baseline.end() ||
            leg_it == baseline.end() || leg_it->second <= 0)
            continue;
        const double ratio_now = r.events_per_sec / legacy;
        const double ratio_then = cal_it->second / leg_it->second;
        if (ratio_now < (1.0 - tolerance) * ratio_then) {
            std::printf("REGRESSION %s/%s: calendar-vs-legacy ratio %.2f "
                        "(baseline %.2f, tolerance %.0f%%)\n",
                        r.matrix.c_str(), r.strategy.c_str(), ratio_now,
                        ratio_then, tolerance * 100);
            ++failures;
        }
    }
    if (failures == 0)
        std::printf("perf check OK: no (matrix, strategy) ratio regressed "
                    ">%.0f%% vs %s\n", tolerance * 100, path.c_str());
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::init(&argc, argv);
    std::string out_path = "BENCH_sim_perf.json";
    std::string check_path;
    std::string prepr_path;
    double tolerance = 0.30;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            HT_FATAL_IF(i + 1 >= argc, "missing value for ", a);
            return argv[++i];
        };
        if (a == "--out")
            out_path = next();
        else if (a == "--check")
            check_path = next();
        else if (a == "--tolerance")
            tolerance = std::strtod(next().c_str(), nullptr);
        else if (a == "--prepr-csv")
            prepr_path = next();
        else
            HT_FATAL("unknown option '", a, "'");
    }

    bench::banner("bench_sim_perf", "perf trajectory",
                  "Event-core throughput (events/sec) per strategy, "
                  "calendar queue vs the legacy binary heap");

    std::map<std::pair<std::string, std::string>, PreprRow> prepr;
    if (!prepr_path.empty())
        prepr = readPreprCsv(prepr_path);

    Architecture arch = calibrated(makeSpadeSextans(4));
    const double min_ms = bench::smokeMode() ? 5.0 : 20.0;
    const int max_reps = bench::smokeMode() ? 8 : 16;

    ImplGuard guard;
    std::vector<Record> records;
    GeoMean engine_speedup;
    GeoMean loop_speedup;
    GeoMean wall_speedup;
    Table table({"Matrix", "Strategy", "Events", "Batched", "Calendar Mev/s",
                 "Legacy Mev/s", "Engine speedup", "vs pre-PR"});
    for (const std::string& name : bench::tableVNames()) {
        const CooMatrix& m = bench::suiteMatrix(name);
        HotTilesOptions o;
        o.build_formats = false;
        HotTiles ht(arch, m, o);
        const Partition iu = ht.iunaware();
        const Partition& htp = ht.partition();
        WorkListCache cache;

        struct Strat
        {
            const char* name;
            const std::vector<uint8_t>* is_hot;
            bool serial;
        };
        std::vector<uint8_t> all_hot(ht.grid().numTiles(), 1);
        std::vector<uint8_t> all_cold(ht.grid().numTiles(), 0);
        const Strat strats[] = {
            {"HotOnly", &all_hot, false},
            {"ColdOnly", &all_cold, false},
            {"IUnaware", &iu.is_hot, iu.serial},
            {"HotTiles", &htp.is_hot, htp.serial},
        };
        for (const Strat& s : strats) {
            SimConfig cfg;
            cfg.work_cache = &cache;
            auto runOnce = [&] {
                return simulateExecution(arch, ht.grid(), *s.is_hot,
                                         s.serial, o.kernel, cfg)
                    .stats;
            };
            Record per_impl[2];
            for (EventQueue::Impl impl : {EventQueue::Impl::Calendar,
                                          EventQueue::Impl::LegacyHeap}) {
                EventQueue::setDefaultImpl(impl);
                SimStats st = runOnce();  // warm-up (also fills the cache)
                int reps = 0;
                double elapsed_ms = 0;
                double loop_ms_sum = 0;
                const auto t0 = std::chrono::steady_clock::now();
                while (reps < max_reps && elapsed_ms < min_ms) {
                    st = runOnce();
                    loop_ms_sum += st.loop_ms;
                    ++reps;
                    elapsed_ms = std::chrono::duration<double, std::milli>(
                                     std::chrono::steady_clock::now() - t0)
                                     .count();
                }
                Record r;
                r.matrix = name;
                r.strategy = s.name;
                r.impl = implName(impl);
                r.events = st.events_processed;
                r.wall_ms = elapsed_ms / reps;
                r.loop_ms = loop_ms_sum / reps;
                r.events_per_sec = double(st.events_processed +
                                          st.batched_events) /
                                   (r.loop_ms / 1e3);
                r.sim_cycles = st.cycles;
                r.batched_events = st.batched_events;
                r.peak_queue_depth = st.peak_queue_depth;
                per_impl[impl == EventQueue::Impl::Calendar ? 0 : 1] = r;
            }
            // Both engines must simulate the identical execution.
            HT_FATAL_IF(per_impl[0].sim_cycles != per_impl[1].sim_cycles ||
                            per_impl[0].events != per_impl[1].events,
                        "queue engines diverged on ", name, "/", s.name);
            const double ratio =
                per_impl[0].events_per_sec / per_impl[1].events_per_sec;
            // Tiny rows (sub-500 events, microsecond loops) are timing
            // noise; keep them out of the summary geomeans.
            const bool noisy = per_impl[0].events < 500;
            if (!noisy)
                engine_speedup.add(ratio);
            std::string vs_prepr = "-";
            if (auto it = prepr.find({name, s.name}); it != prepr.end()) {
                const double p_eps = it->second.eventsPerSec();
                if (p_eps > 0) {
                    const double sp = per_impl[0].events_per_sec / p_eps;
                    if (!noisy)
                        loop_speedup.add(sp);
                    vs_prepr = Table::num(sp, 2) + (noisy ? "x *" : "x");
                }
                if (it->second.wall_ms > 0 && !noisy)
                    wall_speedup.add(it->second.wall_ms /
                                     per_impl[0].wall_ms);
            }
            table.addRow({name, s.name, std::to_string(per_impl[0].events),
                          std::to_string(per_impl[0].batched_events),
                          Table::num(per_impl[0].events_per_sec / 1e6, 2),
                          Table::num(per_impl[1].events_per_sec / 1e6, 2),
                          Table::num(ratio, 2), vs_prepr});
            records.push_back(per_impl[0]);
            records.push_back(per_impl[1]);
        }
    }
    table.print(std::cout);
    std::printf("(events/sec counts retired events: scheduler pops + "
                "batched completions; * = sub-500-event row, excluded "
                "from geomeans)\n");
    std::printf("geomean calendar-vs-legacy events/sec: %.2fx\n",
                engine_speedup.value());
    if (!prepr.empty()) {
        std::printf("geomean event-loop events/sec vs pre-PR: %.2fx\n",
                    loop_speedup.value());
        std::printf("geomean whole-run wall clock vs pre-PR: %.2fx\n",
                    wall_speedup.value());
    }

    writeJson(out_path, records, prepr, bench::smokeMode(),
              engine_speedup.value(), loop_speedup.value(),
              wall_speedup.value());
    std::printf("wrote %s\n", out_path.c_str());

    if (!check_path.empty())
        return checkAgainstBaseline(records, check_path, tolerance);
    return 0;
}
