/**
 * @file
 * Table VI reproduction: absolute simulated runtimes (ms) per strategy
 * for SPADE-Sextans scale 4.  Our matrices are ~32x smaller proxies
 * (DESIGN.md), so absolute values are correspondingly smaller; what
 * must match the paper is the per-matrix ORDERING of the strategies.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

using namespace hottiles;
using namespace hottiles::bench;

int
main(int argc, char** argv)
{
    init(&argc, argv);
    banner("Table VI", "HPCA'24 HotTiles, Table VI",
           "Absolute runtime in ms for SPADE-Sextans (proxy-scaled)");

    Architecture arch = calibrated(makeSpadeSextans(4));
    auto evs = evaluateSuite(arch, tableVNames());

    Table t({"Matrix", "HotOnly", "ColdOnly", "BestHom", "IUnaware",
             "HotTiles", "Chosen heuristic"});
    t.setAlign(6, Table::Align::Left);
    int hottiles_wins = 0;
    for (const auto& ev : evs) {
        double best_hom_ms =
            std::min(ev.hot_only.ms(), ev.cold_only.ms());
        if (ev.hottiles.ms() <= best_hom_ms * 1.0001)
            ++hottiles_wins;
        t.addRow({ev.matrix, Table::num(ev.hot_only.ms(), 3),
                  Table::num(ev.cold_only.ms(), 3),
                  Table::num(best_hom_ms, 3),
                  Table::num(ev.iunaware.ms(), 3),
                  Table::num(ev.hottiles.ms(), 3),
                  ev.hottiles.partition.heuristic +
                      (ev.hottiles.partition.serial ? " (serial)"
                                                    : " (parallel)")});
    }
    t.print(std::cout);
    std::cout << "\nHotTiles at least matches BestHomogeneous on "
              << hottiles_wins << "/" << evs.size()
              << " matrices (paper: 9/10; myc is the exception)\n";
    return 0;
}
