/**
 * @file
 * Fig 10 reproduction: homogeneous vs heterogeneous execution on
 * SPADE-Sextans (system scale 4) across the ten Table V matrices.
 * Bars = speedup over the worst homogeneous execution per matrix.
 * Paper headline: HotTiles averages 8.7x / 1.9x / 2.0x over HotOnly /
 * ColdOnly / IUnaware, and 1.25x over BestHomogeneous.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

using namespace hottiles;
using namespace hottiles::bench;

int
main(int argc, char** argv)
{
    init(&argc, argv);
    banner("Figure 10", "HPCA'24 HotTiles, Fig 10",
           "Strategy comparison on SPADE-Sextans scale 4 (Table V set)");

    Architecture arch = calibrated(makeSpadeSextans(4));
    auto evs = evaluateSuite(arch, tableVNames());

    Table t({"Matrix", "HotOnly", "ColdOnly", "BestHom", "IUnaware",
             "HotTiles"});
    GeoMean vs_hot;
    GeoMean vs_cold;
    GeoMean vs_iu;
    GeoMean vs_best;
    for (const auto& ev : evs) {
        double ht = ev.hottiles.cycles();
        vs_hot.add(speedup(ev.hot_only.cycles(), ht));
        vs_cold.add(speedup(ev.cold_only.cycles(), ht));
        vs_iu.add(speedup(ev.iunaware.cycles(), ht));
        vs_best.add(speedup(ev.bestHomogeneousCycles(), ht));
        double worst = ev.worstHomogeneousCycles();
        t.addRow({ev.matrix, Table::num(worst / ev.hot_only.cycles(), 2),
                  Table::num(worst / ev.cold_only.cycles(), 2),
                  Table::num(worst / ev.bestHomogeneousCycles(), 2),
                  Table::num(worst / ev.iunaware.cycles(), 2),
                  Table::num(worst / ht, 2)});
    }
    std::cout << "\nSpeedup over the worst homogeneous execution:\n";
    t.print(std::cout);

    Table g({"HotTiles speedup over", "Measured (geomean)", "Paper"});
    g.addRow({"HotOnly", Table::num(vs_hot.value(), 2), "8.7x"});
    g.addRow({"ColdOnly", Table::num(vs_cold.value(), 2), "1.9x"});
    g.addRow({"IUnaware", Table::num(vs_iu.value(), 2), "2.0x"});
    g.addRow({"BestHomogeneous", Table::num(vs_best.value(), 2), "1.25x"});
    std::cout << "\n";
    g.print(std::cout);
    return 0;
}
