/**
 * @file
 * Fig 16 reproduction: predicted vs actual average performance of the
 * nine iso-scale SPADE-Sextans architectures (0-8 ... 8-0), as speedup
 * over the balanced 4-4 design, averaged over the Table V matrices.
 * Paper shape: predicted and actual trends agree; the 3-5 design is
 * both predicted and measured best on average.
 */

#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/explorer.hpp"

using namespace hottiles;
using namespace hottiles::bench;

int
main(int argc, char** argv)
{
    init(&argc, argv);
    banner("Figure 16", "HPCA'24 HotTiles, Fig 16",
           "Iso-scale architecture exploration: predicted vs actual");

    const int total = 8;
    // Per architecture: geomean over matrices of (4-4 cycles / cycles).
    std::vector<GeoMean> pred(total + 1);
    std::vector<GeoMean> actual(total + 1);

    for (const auto& name : tableVNames()) {
        auto pts = exploreIsoScale(suiteMatrix(name), total, KernelConfig{});
        const ExplorationPoint& base = pts[4];  // the 4-4 design
        for (int c = 0; c <= total; ++c) {
            pred[c].add(base.predicted_cycles / pts[c].predicted_cycles);
            actual[c].add(base.actual_cycles / pts[c].actual_cycles);
        }
    }

    Table t({"Architecture (cold-hot)", "Predicted speedup vs 4-4",
             "Actual speedup vs 4-4"});
    int best_pred = 0;
    int best_actual = 0;
    for (int c = 0; c <= total; ++c) {
        if (pred[c].value() > pred[best_pred].value())
            best_pred = c;
        if (actual[c].value() > actual[best_actual].value())
            best_actual = c;
        t.addRow({std::to_string(c) + "-" + std::to_string(total - c),
                  Table::num(pred[c].value(), 2),
                  Table::num(actual[c].value(), 2)});
    }
    t.print(std::cout);
    std::cout << "\npredicted-best architecture: " << best_pred << "-"
              << (total - best_pred) << ", actual-best: " << best_actual
              << "-" << (total - best_actual)
              << "  (paper: 3-5 for both)\n";
    return 0;
}
