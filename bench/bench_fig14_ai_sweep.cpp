/**
 * @file
 * Fig 14 reproduction: gSpMM arithmetic-intensity sweep on the
 * SPADE-Sextans+PCIe architecture.  The SPADE PEs pay AI-proportional
 * compute cycles; the enhanced off-die Sextans processes 20 nnz/cycle
 * regardless of AI but streams through a 32 GB/s link.  Paper shape:
 * at low AI nearly all nonzeros go cold (big speedup vs HotOnly, small
 * vs ColdOnly); as AI rises the assignment and the speedups flip.
 * Paper averages across AIs: 11.9x vs HotOnly, 3.7x vs ColdOnly, 2.5x
 * vs BestHomogeneous.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

using namespace hottiles;
using namespace hottiles::bench;

int
main(int argc, char** argv)
{
    init(&argc, argv);
    banner("Figure 14", "HPCA'24 HotTiles, Fig 14",
           "gSpMM arithmetic-intensity sweep on SPADE-Sextans+PCIe");

    Architecture arch = calibrated(makeSpadeSextansPcie());

    Table t({"SIMD ops per nnz (AI)", "vs HotOnly", "vs ColdOnly",
             "vs BestHom", "% nnz assigned hot"});
    GeoMean vs_hot_all;
    GeoMean vs_cold_all;
    GeoMean vs_best_all;
    for (double ai : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0}) {
        HotTilesOptions opts;
        opts.kernel.ai_factor = ai;
        opts.build_formats = false;

        GeoMean vs_hot;
        GeoMean vs_cold;
        GeoMean vs_best;
        Summary hot_nnz_pct;
        for (const auto& name : tableVNames()) {
            MatrixEvaluation ev =
                evaluateMatrix(arch, suiteMatrix(name), name, opts);
            double ht = ev.hottiles.cycles();
            vs_hot.add(ev.hot_only.cycles() / ht);
            vs_cold.add(ev.cold_only.cycles() / ht);
            vs_best.add(ev.bestHomogeneousCycles() / ht);
            hot_nnz_pct.add(100.0 * ev.hottiles.partition.hotNnzFraction(
                                suiteGrid(name, arch.tile_height,
                                          arch.tile_width)));
        }
        vs_hot_all.add(vs_hot.value());
        vs_cold_all.add(vs_cold.value());
        vs_best_all.add(vs_best.value());
        t.addRow({Table::num(ai, 0), Table::num(vs_hot.value(), 2),
                  Table::num(vs_cold.value(), 2),
                  Table::num(vs_best.value(), 2),
                  Table::num(hot_nnz_pct.mean(), 1)});
    }
    std::cout << "\nGeomean HotTiles speedups per arithmetic intensity:\n";
    t.print(std::cout);
    std::cout << "averages across AIs: vs HotOnly "
              << Table::num(vs_hot_all.value(), 2) << "x (paper 11.9x), "
              << "vs ColdOnly " << Table::num(vs_cold_all.value(), 2)
              << "x (paper 3.7x), vs BestHom "
              << Table::num(vs_best_all.value(), 2) << "x (paper 2.5x)\n";
    return 0;
}
