/**
 * @file
 * Ablation (§IV + §X): smart tile sizing.  The free tile dimension is
 * searched with the model (predicted runtime per candidate size); this
 * bench compares the simulated runtime at the model-recommended size
 * against the fixed default, per matrix.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/hottiles.hpp"
#include "core/tile_search.hpp"
#include "sim/simulator.hpp"

using namespace hottiles;
using namespace hottiles::bench;

namespace {

double
simulateAtTileSize(const Architecture& base, const CooMatrix& m, Index size)
{
    Architecture arch = base;
    arch.tile_height = size;
    arch.tile_width = size;
    HotTilesOptions opts;
    opts.build_formats = false;
    HotTiles ht(arch, m, opts);
    return double(simulateExecution(arch, ht.grid(), ht.partition().is_hot,
                                    ht.partition().serial, opts.kernel)
                      .stats.cycles);
}

} // namespace

int
main(int argc, char** argv)
{
    init(&argc, argv);
    banner("Ablation: tile sizing", "HPCA'24 HotTiles, §IV / §X",
           "Model-searched tile size vs the fixed default (256)");

    Architecture arch = calibrated(makeSpadeSextans(4));
    std::vector<std::string> names = {"ski", "pap", "kro", "myc", "pok",
                                      "ser"};

    Table t({"Matrix", "Recommended size", "Cycles @256",
             "Cycles @recommended", "Gain"});
    GeoMean gain;
    for (const auto& name : names) {
        const CooMatrix& m = suiteMatrix(name);
        TileSizeSearchResult ts =
            searchTileSize(arch, m, KernelConfig{}, {64, 128, 256, 512});
        double at_default = simulateAtTileSize(arch, m, 256);
        double at_best = ts.best.tile_height == 256
                             ? at_default
                             : simulateAtTileSize(arch, m,
                                                  ts.best.tile_height);
        double g = at_default / at_best;
        gain.add(g);
        t.addRow({name, std::to_string(ts.best.tile_height),
                  Table::num(at_default, 0), Table::num(at_best, 0),
                  Table::num(g, 2)});
    }
    t.print(std::cout);
    std::cout << "\ngeomean gain from searched tile sizes: "
              << Table::num(gain.value(), 2)
              << "x (>= 1 means the model's choice helped or matched)\n";
    return 0;
}
