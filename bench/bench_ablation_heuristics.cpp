/**
 * @file
 * Ablation (§V-A/B): heuristic quality against the exhaustive optimum
 * and the N log N scaling claim.  On instances small enough to brute
 * force, the best-of-four heuristics lands within a few percent of the
 * 2^N-search optimum of Eq 8; on full-size grids the partitioning cost
 * grows near-linearly with the tile count.
 */

#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/hottiles.hpp"
#include "partition/oracle.hpp"
#include "sparse/generators.hpp"

using namespace hottiles;
using namespace hottiles::bench;

int
main(int argc, char** argv)
{
    init(&argc, argv);
    banner("Ablation: heuristic optimality and cost",
           "HPCA'24 HotTiles, §V", "Heuristics vs exhaustive oracle");

    Architecture arch = calibrated(makeSpadeSextans(4));

    // Part 1: optimality gap on brute-forceable instances.
    Table t1({"Instance", "Tiles", "Heuristic predicted", "Oracle optimum",
              "Gap %"});
    Summary gap;
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        CooMatrix m = genRmat(128, 400, 0.57, 0.19, 0.19, 0.05, seed);
        TileGrid grid(m, 32, 32);
        PartitionContext ctx = makePartitionContext(
            grid, arch.hot, arch.cold, KernelConfig{},
            arch.bwBytesPerCycle(), 2000.0, false);
        Partition heur = hotTilesPartition(ctx);
        Partition oracle = oraclePartition(ctx);
        double g = 100.0 * (heur.predicted_cycles / oracle.predicted_cycles -
                            1.0);
        gap.add(g);
        t1.addRow({"rmat-" + std::to_string(seed),
                   std::to_string(grid.numTiles()),
                   Table::num(heur.predicted_cycles, 0),
                   Table::num(oracle.predicted_cycles, 0),
                   Table::num(g, 2)});
    }
    t1.print(std::cout);
    std::cout << "average optimality gap: " << Table::num(gap.mean(), 2)
              << "% (an exhaustive search is 2^N)\n\n";

    // Part 2: partitioning cost scaling with the tile count.
    Table t2({"Rows", "Tiles", "Partitioning ms", "us per tile"});
    std::vector<Index> sizes = {8192u, 16384u, 32768u, 65536u};
    if (smokeMode())
        sizes = {2048u};
    for (Index rows : sizes) {
        CooMatrix m = genRmat(rows, size_t(rows) * 16, 0.57, 0.19, 0.19,
                              0.05, 99);
        TileGrid grid(m, 128, 128);
        PartitionContext ctx = makePartitionContext(
            grid, arch.hot, arch.cold, KernelConfig{},
            arch.bwBytesPerCycle(), 2000.0, false);
        auto t0 = std::chrono::steady_clock::now();
        Partition p = hotTilesPartition(ctx);
        auto t1v = std::chrono::steady_clock::now();
        double ms = std::chrono::duration<double, std::milli>(t1v - t0)
                        .count();
        t2.addRow({std::to_string(rows), std::to_string(grid.numTiles()),
                   Table::num(ms, 2),
                   Table::num(1e3 * ms / double(grid.numTiles()), 2)});
        (void)p;
    }
    t2.print(std::cout);
    std::cout << "us/tile stays ~flat: the N log N claim of §V-B holds.\n";
    return 0;
}
