/**
 * @file
 * Ablation (§X future work): the cache-aware model extension.  The
 * paper's model deliberately ignores cache reuse, which inflates the
 * ColdOnly prediction error on cache-friendly matrices (Fig 17) and can
 * make HotTiles over-assign tiles to hot workers.  This ablation
 * enables the working-set capacity model for the cold workers and
 * reports (a) the ColdOnly prediction-error reduction and (b) the
 * change in HotTiles end-to-end quality.
 */

#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

using namespace hottiles;
using namespace hottiles::bench;

int
main(int argc, char** argv)
{
    init(&argc, argv);
    banner("Ablation: cache-aware model", "HPCA'24 HotTiles, §X / §IV-C",
           "Pessimistic no-cache model vs working-set extension");

    Architecture base = calibrated(makeSpadeSextans(4));
    Architecture ext = base;
    ext.name = "SPADE-Sextans scale 4 (cache-aware model)";
    ext.cold.model_cache_bytes = ext.cold_pe.l1_bytes;
    calibrateArchitecture(ext);  // re-fit vis_lat under the new model

    Table t({"Matrix", "ColdOnly err % (base)", "ColdOnly err % (ext)",
             "HotTiles speedup vs BestHom (base)", "(ext)"});
    Summary err_base;
    Summary err_ext;
    GeoMean q_base;
    GeoMean q_ext;
    for (const auto& name : tableVNames()) {
        MatrixEvaluation b = evaluateMatrix(base, suiteMatrix(name), name);
        MatrixEvaluation e = evaluateMatrix(ext, suiteMatrix(name), name);
        auto rel = [](const StrategyOutcome& s) {
            return 100.0 * std::abs(s.predicted_cycles - s.cycles()) /
                   s.cycles();
        };
        double eb = rel(b.cold_only);
        double ee = rel(e.cold_only);
        err_base.add(eb);
        err_ext.add(ee);
        double qb = b.bestHomogeneousCycles() / b.hottiles.cycles();
        double qe = e.bestHomogeneousCycles() / e.hottiles.cycles();
        q_base.add(qb);
        q_ext.add(qe);
        t.addRow({name, Table::num(eb, 1), Table::num(ee, 1),
                  Table::num(qb, 2), Table::num(qe, 2)});
    }
    t.print(std::cout);
    std::cout << "\naverage ColdOnly prediction error: "
              << Table::num(err_base.mean(), 1) << "% -> "
              << Table::num(err_ext.mean(), 1)
              << "% with the extension\n"
              << "geomean HotTiles speedup vs BestHomogeneous: "
              << Table::num(q_base.value(), 2) << "x -> "
              << Table::num(q_ext.value(), 2) << "x\n";
    return 0;
}
