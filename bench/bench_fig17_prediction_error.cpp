/**
 * @file
 * Fig 17 reproduction: relative error of the model's predicted execution
 * time vs the simulated one, for HotOnly, ColdOnly and HotTiles, on
 * SPADE-Sextans and PIUMA.  Paper signature: averages 4.8% / 19.6% /
 * 12.4%, with the largest ColdOnly errors on the matrices with strong
 * Din cache reuse (the model deliberately ignores caches, §IV-C), and
 * larger errors on SPADE-Sextans than on PIUMA because the SPADE L1s
 * are bigger than the MTP caches.
 *
 * Beyond the paper's whole-run aggregates, each HotTiles run also
 * collects per-unit prediction-error telemetry (core/telemetry.hpp):
 * per-tile th_i error on the hot side (exact) and per-panel tc error on
 * the cold side (latency-weighted approximation), summarised here as a
 * distribution per architecture and recorded into the global metrics
 * registry under prediction_error.<arch>.*.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/telemetry.hpp"

using namespace hottiles;
using namespace hottiles::bench;

namespace {

double
relError(double predicted, double actual)
{
    return 100.0 * std::abs(predicted - actual) / actual;
}

/** One line summarising a per-unit error sample set. */
void
printUnitErrors(const char* kind, const std::vector<PredictionErrorSample>&
                samples)
{
    if (samples.empty()) {
        std::cout << "  " << kind << ": no units\n";
        return;
    }
    Summary s;
    Histogram h(0.0, 200.0, 40);
    for (const auto& u : samples) {
        s.add(u.error_pct);
        h.add(u.error_pct);
    }
    std::cout << "  " << kind << ": " << s.count() << " units, mean "
              << Table::num(s.mean(), 1) << "%, p50 "
              << Table::num(h.quantile(0.5), 1) << "%, p90 "
              << Table::num(h.quantile(0.9), 1) << "%, max "
              << Table::num(s.max(), 1) << "%\n";
}

void
runArch(const std::string& label, Architecture arch, Summary err[3],
        Summary& cold_err_this_arch)
{
    // Per-matrix evaluation with telemetry: per-unit errors of the
    // HotTiles strategy accumulate across the suite for this arch.
    PredictionErrorTelemetry arch_pred;
    std::vector<MatrixEvaluation> evs;
    for (const auto& name : tableVNames()) {
        PredictionErrorTelemetry pred;
        EvalObservability obs;
        obs.collect_prediction_error = true;
        obs.prediction = &pred;
        evs.push_back(evaluateMatrix(arch, suiteMatrix(name), name, {},
                                     nullptr, obs));
        arch_pred.hot_tiles.insert(arch_pred.hot_tiles.end(),
                                   pred.hot_tiles.begin(),
                                   pred.hot_tiles.end());
        arch_pred.cold_panels.insert(arch_pred.cold_panels.end(),
                                     pred.cold_panels.begin(),
                                     pred.cold_panels.end());
    }
    Table t({"Matrix", "HotOnly err %", "ColdOnly err %", "HotTiles err %",
             "Cold cache hit %"});
    for (const auto& ev : evs) {
        double e_hot = relError(ev.hot_only.predicted_cycles,
                                ev.hot_only.cycles());
        double e_cold = relError(ev.cold_only.predicted_cycles,
                                 ev.cold_only.cycles());
        double e_ht = relError(ev.hottiles.predicted_cycles,
                               ev.hottiles.cycles());
        err[0].add(e_hot);
        err[1].add(e_cold);
        err[2].add(e_ht);
        cold_err_this_arch.add(e_cold);
        uint64_t acc = ev.cold_only.stats.cold_cache_hits +
                       ev.cold_only.stats.cold_cache_misses;
        double hit = acc ? 100.0 * ev.cold_only.stats.cold_cache_hits / acc
                         : 0.0;
        t.addRow({ev.matrix, Table::num(e_hot, 1), Table::num(e_cold, 1),
                  Table::num(e_ht, 1), Table::num(hit, 1)});
    }
    std::cout << "\n" << label << ":\n";
    t.print(std::cout);
    std::cout << "per-unit HotTiles prediction error (hot exact, cold "
                 "latency-weighted approx):\n";
    printUnitErrors("hot tiles ", arch_pred.hot_tiles);
    printUnitErrors("cold panels", arch_pred.cold_panels);
    // Per-arch registry histograms alongside the strategy-level ones
    // recorded by evaluateMatrix itself.
    recordPredictionError(arch_pred, label);
}

} // namespace

int
main(int argc, char** argv)
{
    init(&argc, argv);
    banner("Figure 17", "HPCA'24 HotTiles, Fig 17",
           "Model prediction error vs simulation");

    Summary err[3];
    Summary ss_cold_err;
    Summary piuma_cold_err;
    runArch("SPADE-Sextans scale 4", calibrated(makeSpadeSextans(4)), err,
            ss_cold_err);
    runArch("PIUMA", calibrated(makePiuma()), err, piuma_cold_err);

    std::cout << "\naverage error: HotOnly " << Table::num(err[0].mean(), 1)
              << "% (paper 4.8%), ColdOnly " << Table::num(err[1].mean(), 1)
              << "% (paper 19.6%), HotTiles "
              << Table::num(err[2].mean(), 1) << "% (paper 12.4%)\n";
    std::cout << "ColdOnly error SPADE-Sextans vs PIUMA: "
              << Table::num(ss_cold_err.mean(), 1) << "% vs "
              << Table::num(piuma_cold_err.mean(), 1)
              << "% (paper: larger on SPADE-Sextans — bigger caches)\n";
    return 0;
}
