/**
 * @file
 * hottiles — command-line driver for the HotTiles framework.
 *
 *   hottiles suite
 *       List the built-in benchmark matrices (Table V / VIII proxies).
 *
 *   hottiles analyze  <matrix> [options]
 *       Tile the matrix, print IMH statistics and the model's view.
 *
 *   hottiles partition <matrix> [options] [--out FILE]
 *       Run the full preprocessing pipeline; optionally save the
 *       partition for later reuse (GNN training -> inference flow).
 *
 *   hottiles simulate <matrix> [options] [--load FILE]
 *       Simulate every execution strategy and print the comparison.
 *
 *   hottiles explore  <matrix> [options] [--total N]
 *       Iso-scale architecture exploration (predicted vs simulated).
 *
 *   hottiles run <matrix> --native [options]
 *       Execute the HotTiles partition plan for real on the host via
 *       the native CPU backend (docs/EXECUTION.md): hot tiles through
 *       the streaming SIMD kernels, cold panels through untiled CSR,
 *       verified against the golden reference and reporting per-class
 *       measured-vs-predicted model error.
 *
 *   hottiles serve [options]
 *       Long-lived partition-plan daemon (docs/SERVING.md): reads
 *       length-prefixed request frames from stdin, writes reply frames
 *       to stdout.  Plan caching, admission control, deadlines and the
 *       graceful-degradation ladder all live behind this command.
 *
 *   hottiles update <matrix> [options]
 *       Incremental-update demonstration (docs/INCREMENTAL.md): apply
 *       random insert/delete batches through HotTiles::applyDelta,
 *       verify each result bit-identical against from-scratch
 *       preprocessing (plan, formats and SpMM output), and report the
 *       incremental-vs-rebuild cost per round.
 *
 *   hottiles convert <src> <dst.htb> [--panel-rows N]
 *       Convert a matrix to the panel-sorted `.htb` binary format
 *       (docs/OUTOFCORE.md).  <src> is a .mtx path (streamed, O(panel)
 *       RSS), @name for a built-in proxy, or rmat:SCALE:DEGREE[:SEED]
 *       for a streamed R-MAT generation.  `.htb` files feed --mmap.
 *
 * Exit codes (asserted by the CLI ctests):
 *   0  success
 *   1  runtime error (bad matrix file, simulation failure, ...)
 *   2  usage error (unknown command/option, malformed option value)
 *   3  verification failure (native result diverges from the reference)
 *   4  completed, but degraded by an injected fault (class fail-stop)
 *
 * <matrix> is a MatrixMarket file, or @name for a built-in proxy
 * (e.g. @pap); with --mmap it is a `.htb` file consumed zero-copy via
 * mmap (partition/run only — see `convert`).  Options:
 *   --mmap       treat <matrix> as `.htb` and memory-map it; the
 *                preprocessed state is bit-identical to the in-memory
 *                path, but peak RSS excludes the O(nnz) input arrays
 *   --panel-rows N  `.htb` panel height written by convert (default 256;
 *                match the tile height the consumer will use)
 *   --arch spade-sextans[:SCALE] | pcie | piuma   (default spade-sextans:4)
 *   --kernel spmm|spmv|sddmm                      (default spmm)
 *   --k N        dense width                      (default 32)
 *   --ai X       gSpMM arithmetic intensity       (default 1)
 *   --tile N     square tile size override
 *   --seed N     IUnaware randomization seed
 *   --threads N  worker threads for preprocessing/kernels
 *                (default: HOTTILES_THREADS env or all hardware threads)
 *   --faults SPEC   inject faults into `simulate` runs; SPEC is
 *                comma-separated key=N with keys failstop, slowdown,
 *                linkdegrade, memspike, horizon (sim/fault_injector.hpp)
 *   --fault-seed N  seed of the fault plan composition  (default 1)
 *   --trace F       CSV event trace of `simulate` runs
 *   --trace-json F  Chrome trace-event JSON of `simulate` runs (open in
 *                Perfetto / chrome://tracing; see docs/OBSERVABILITY.md)
 *   --metrics F|-   metrics-registry JSON snapshot (phase timings,
 *                prediction-error histograms); '-' writes to stdout
 * `run` options:
 *   --native        select the native CPU backend (required; names the
 *                backend so accelerator backends can slot in later)
 *   --policy golden|fast  kernel policy (default golden, bit-verified)
 *   --hot-executors N     pin hot-class executor slots (default: model)
 *   --no-steal      disable cross-class work stealing at the tail
 *   --no-verify     skip the reference-kernel verification pass
 *   --fail-class hot|cold --fail-after N   inject a class fail-stop
 *                after N tasks (exit 4 when the run survives degraded)
 *   --corrupt-output  fault hook: flip one output value after the run
 *                so the verification pass must fail (exit 3); exists so
 *                the exit-code contract stays testable
 * `update` options:
 *   --updates N      delta rounds to apply              (default 3)
 *   --inserts N      nonzero insertions per round       (default 64)
 *   --deletes N      nonzero deletions per round        (default 64)
 *   --delta-seed S   batch-generator seed               (default 7)
 * `serve` options:
 *   --workers N          request executor threads       (default 4)
 *   --queue-capacity N   admission queue slots          (default 64)
 *   --tenant-cap N       per-tenant queue slots         (default: none)
 *   --cache-capacity N   resident plans, 0 = off        (default 128)
 *   --deadline-ms X      default request deadline       (default 1000)
 *   --max-retries N      transient-failure retries      (default 2)
 *   --chaos-seed N       enable deterministic chaos mode (0 = off)
 *   --no-coalesce        disable in-flight Run request coalescing
 *   --max-sessions N     live delta sessions, 0 = off   (default 64)
 *   --session-formats    build session worker formats eagerly
 */

#include <charconv>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/calibrate.hpp"
#include "core/execution.hpp"
#include "core/explorer.hpp"
#include "core/serialize.hpp"
#include "core/tile_search.hpp"
#include "common/metrics.hpp"
#include "common/random.hpp"
#include "core/telemetry.hpp"
#include "exec/backend.hpp"
#include "kernels/dispatch.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "partition/predicted_runtime.hpp"
#include "sim/fault_injector.hpp"
#include "sim/trace.hpp"
#include "sim/trace_json.hpp"
#include "sparse/delta.hpp"
#include "sparse/generators.hpp"
#include "sparse/htb.hpp"
#include "sparse/imh_stats.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/suite.hpp"

using namespace hottiles;

namespace {

struct Options
{
    std::string command;
    std::string matrix;
    std::string arch_name = "spade-sextans:4";
    std::string kernel_name = "spmm";
    uint32_t k = 32;
    double ai = 1.0;
    Index tile = 0;  // 0 = architecture default
    uint64_t seed = 42;
    unsigned threads = 0;  // 0 = HOTTILES_THREADS env / hardware default
    // out-of-core (docs/OUTOFCORE.md)
    bool mmap = false;          //!< <matrix> is a `.htb`, consumed zero-copy
    Index panel_rows = 256;     //!< `.htb` panel height for `convert`
    std::string convert_dst;    //!< `convert` output path
    std::string out_file;
    std::string load_file;
    std::string trace_file;
    std::string trace_json_file;
    std::string metrics_file;
    std::string faults_spec;
    uint64_t fault_seed = 1;
    int total = 8;
    bool verbose = false;
    // `run` command
    bool native = false;
    std::string policy_name = "golden";
    unsigned hot_executors = 0;
    bool no_steal = false;
    bool no_verify = false;
    int fail_class = -1;  // -1 = no injected class fail-stop
    uint64_t fail_after = 0;
    bool corrupt_output = false;  // fault hook: force verify failure
    // `update` command
    uint64_t updates = 3;
    uint64_t delta_inserts = 64;
    uint64_t delta_deletes = 64;
    uint64_t delta_seed = 7;
    // `serve` command
    unsigned serve_workers = 4;
    uint64_t serve_queue = 64;
    uint64_t serve_tenant_cap = 0;
    uint64_t serve_cache = 128;
    double serve_deadline_ms = 1000;
    uint32_t serve_max_retries = 2;
    bool serve_coalesce = true;
    uint64_t serve_max_sessions = 64;
    bool serve_session_formats = false;
    uint64_t chaos_seed = 0;
};

/** Distinct exit codes, documented above and pinned by the CLI ctests. */
constexpr int kExitOk = 0;
constexpr int kExitError = 1;
constexpr int kExitUsage = 2;
constexpr int kExitVerify = 3;
constexpr int kExitFaultDegraded = 4;

/** Checked numeric argument parsing: every malformed value is a clean
 *  FatalError (caught in main) instead of an uncaught std:: exception. */
uint64_t
parseU64Arg(const std::string& v, const char* what)
{
    uint64_t out = 0;
    auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
    HT_FATAL_IF(ec != std::errc() || p != v.data() + v.size(),
                "bad value for ", what, ": '", v, "'");
    return out;
}

double
parseF64Arg(const std::string& v, const char* what)
{
    double out = 0;
    auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
    HT_FATAL_IF(ec != std::errc() || p != v.data() + v.size(),
                "bad value for ", what, ": '", v, "'");
    return out;
}

[[noreturn]] void
usage(const char* argv0)
{
    std::cerr << "usage: " << argv0
              << " suite|analyze|partition|simulate|explore|run|serve|"
                 "update|convert <matrix> "
                 "[--arch A] [--kernel K] [--k N] [--ai X] [--tile N] "
                 "[--mmap] [--panel-rows N] "
                 "[--seed N] [--out F] [--load F] [--total N] "
                 "[--threads N] [--faults SPEC] [--fault-seed N] "
                 "[--trace F] [--trace-json F] [--metrics F|-] "
                 "[--verbose] [--native] [--policy golden|fast] "
                 "[--hot-executors N] [--no-steal] [--no-verify] "
                 "[--fail-class hot|cold] [--fail-after N] "
                 "[--corrupt-output] "
                 "[--workers N] [--queue-capacity N] [--tenant-cap N] "
                 "[--cache-capacity N] [--deadline-ms X] "
                 "[--max-retries N] [--chaos-seed N] "
                 "[--updates N] [--inserts N] [--deletes N] "
                 "[--delta-seed S]\n"
                 "<matrix> is a .mtx path or @name for a built-in proxy "
                 "(serve takes no matrix; convert takes <src> <dst.htb> "
                 "with src also rmat:SCALE:DEGREE[:SEED]; --mmap reads "
                 "<matrix> as .htb)\n";
    std::exit(kExitUsage);
}

Options
parseArgs(int argc, char** argv)
{
    if (argc < 2)
        usage(argv[0]);
    Options o;
    o.command = argv[1];
    int i = 2;
    if (o.command != "suite" && o.command != "serve") {
        if (i >= argc)
            usage(argv[0]);
        o.matrix = argv[i++];
    }
    if (o.command == "convert") {
        if (i >= argc)
            usage(argv[0]);
        o.convert_dst = argv[i++];
    }
    auto next = [&](const char* what) -> std::string {
        if (i >= argc)
            HT_FATAL("missing value for ", what);
        return argv[i++];
    };
    while (i < argc) {
        std::string a = argv[i++];
        if (a == "--arch")
            o.arch_name = next("--arch");
        else if (a == "--kernel")
            o.kernel_name = next("--kernel");
        else if (a == "--k")
            o.k = static_cast<uint32_t>(parseU64Arg(next("--k"), "--k"));
        else if (a == "--ai")
            o.ai = parseF64Arg(next("--ai"), "--ai");
        else if (a == "--tile")
            o.tile =
                static_cast<Index>(parseU64Arg(next("--tile"), "--tile"));
        else if (a == "--seed")
            o.seed = parseU64Arg(next("--seed"), "--seed");
        else if (a == "--out")
            o.out_file = next("--out");
        else if (a == "--load")
            o.load_file = next("--load");
        else if (a == "--total") {
            uint64_t t = parseU64Arg(next("--total"), "--total");
            HT_FATAL_IF(t == 0 || t > 1024, "--total must be in [1, 1024]");
            o.total = static_cast<int>(t);
        } else if (a == "--trace")
            o.trace_file = next("--trace");
        else if (a == "--trace-json")
            o.trace_json_file = next("--trace-json");
        else if (a == "--metrics")
            o.metrics_file = next("--metrics");
        else if (a == "--faults")
            o.faults_spec = next("--faults");
        else if (a == "--fault-seed")
            o.fault_seed = parseU64Arg(next("--fault-seed"), "--fault-seed");
        else if (a == "--threads")
            o.threads = static_cast<unsigned>(
                parseU64Arg(next("--threads"), "--threads"));
        else if (a == "--verbose")
            o.verbose = true;
        else if (a == "--mmap")
            o.mmap = true;
        else if (a == "--panel-rows") {
            uint64_t pr =
                parseU64Arg(next("--panel-rows"), "--panel-rows");
            HT_FATAL_IF(pr == 0 || pr > (uint64_t(1) << 30),
                        "--panel-rows must be in [1, 2^30]");
            o.panel_rows = static_cast<Index>(pr);
        } else if (a == "--native")
            o.native = true;
        else if (a == "--policy")
            o.policy_name = next("--policy");
        else if (a == "--hot-executors")
            o.hot_executors = static_cast<unsigned>(
                parseU64Arg(next("--hot-executors"), "--hot-executors"));
        else if (a == "--no-steal")
            o.no_steal = true;
        else if (a == "--no-verify")
            o.no_verify = true;
        else if (a == "--fail-class") {
            std::string c = toLower(next("--fail-class"));
            if (c == "hot")
                o.fail_class = 0;
            else if (c == "cold")
                o.fail_class = 1;
            else
                HT_FATAL("--fail-class must be hot or cold, got '", c, "'");
        } else if (a == "--fail-after")
            o.fail_after = parseU64Arg(next("--fail-after"), "--fail-after");
        else if (a == "--corrupt-output")
            o.corrupt_output = true;
        else if (a == "--workers") {
            uint64_t w = parseU64Arg(next("--workers"), "--workers");
            HT_FATAL_IF(w == 0 || w > 1024, "--workers must be in [1, 1024]");
            o.serve_workers = static_cast<unsigned>(w);
        } else if (a == "--queue-capacity")
            o.serve_queue =
                parseU64Arg(next("--queue-capacity"), "--queue-capacity");
        else if (a == "--tenant-cap")
            o.serve_tenant_cap =
                parseU64Arg(next("--tenant-cap"), "--tenant-cap");
        else if (a == "--cache-capacity")
            o.serve_cache =
                parseU64Arg(next("--cache-capacity"), "--cache-capacity");
        else if (a == "--deadline-ms") {
            o.serve_deadline_ms =
                parseF64Arg(next("--deadline-ms"), "--deadline-ms");
            HT_FATAL_IF(o.serve_deadline_ms <= 0,
                        "--deadline-ms must be positive");
        } else if (a == "--max-retries")
            o.serve_max_retries = static_cast<uint32_t>(
                parseU64Arg(next("--max-retries"), "--max-retries"));
        else if (a == "--chaos-seed")
            o.chaos_seed = parseU64Arg(next("--chaos-seed"), "--chaos-seed");
        else if (a == "--no-coalesce")
            o.serve_coalesce = false;
        else if (a == "--max-sessions")
            o.serve_max_sessions =
                parseU64Arg(next("--max-sessions"), "--max-sessions");
        else if (a == "--session-formats")
            o.serve_session_formats = true;
        else if (a == "--updates") {
            o.updates = parseU64Arg(next("--updates"), "--updates");
            HT_FATAL_IF(o.updates == 0 || o.updates > 1024,
                        "--updates must be in [1, 1024]");
        } else if (a == "--inserts")
            o.delta_inserts = parseU64Arg(next("--inserts"), "--inserts");
        else if (a == "--deletes")
            o.delta_deletes = parseU64Arg(next("--deletes"), "--deletes");
        else if (a == "--delta-seed")
            o.delta_seed = parseU64Arg(next("--delta-seed"), "--delta-seed");
        else
            HT_FATAL("unknown option '", a, "'");
    }
    return o;
}

Architecture
makeArch(const Options& o)
{
    auto parts = splitChar(o.arch_name, ':');
    std::string base = toLower(parts[0]);
    Architecture arch;
    if (base == "spade-sextans") {
        int scale = 4;
        if (parts.size() > 1) {
            uint64_t s = parseU64Arg(std::string(parts[1]), "--arch scale");
            HT_FATAL_IF(s == 0 || s > 256,
                        "--arch scale must be in [1, 256]");
            scale = static_cast<int>(s);
        }
        arch = makeSpadeSextans(scale);
    } else if (base == "pcie") {
        arch = makeSpadeSextansPcie();
    } else if (base == "piuma") {
        arch = makePiuma();
    } else {
        HT_FATAL("unknown architecture '", o.arch_name,
                 "' (try spade-sextans[:1|2|4|8], pcie, piuma)");
    }
    if (o.tile > 0) {
        arch.tile_height = o.tile;
        arch.tile_width = o.tile;
    }
    return arch;
}

KernelConfig
makeKernel(const Options& o)
{
    KernelConfig kc;
    std::string k = toLower(o.kernel_name);
    if (k == "spmm") {
        kc.kind = SparseKernel::Spmm;
        kc.k = o.k;
    } else if (k == "spmv") {
        kc = spmvKernel();
    } else if (k == "sddmm") {
        kc = sddmmKernel(o.k);
    } else {
        HT_FATAL("unknown kernel '", o.kernel_name, "'");
    }
    kc.ai_factor = o.ai;
    return kc;
}

CooMatrix
loadMatrix(const Options& o)
{
    if (!o.matrix.empty() && o.matrix[0] == '@')
        return makeSuiteMatrix(o.matrix.substr(1));
    return readMatrixMarketFile(o.matrix);
}

int
cmdSuite()
{
    Table t({"Name", "Stands in for", "Domain", "Rows", "Nnz target"});
    t.setAlign(1, Table::Align::Left);
    t.setAlign(2, Table::Align::Left);
    auto add = [&](const SuiteEntry& e) {
        t.addRow({e.name, e.full_name, e.domain, std::to_string(e.rows),
                  std::to_string(e.nnz_target)});
    };
    for (const auto& e : tableV())
        add(e);
    for (const auto& e : tableVIII())
        add(e);
    t.print(std::cout);
    std::cout << "use @name as the matrix argument, e.g. 'analyze @pap'\n";
    return 0;
}

int
cmdAnalyze(const Options& o)
{
    CooMatrix m = loadMatrix(o);
    Architecture arch = calibrated(makeArch(o));
    KernelConfig kernel = makeKernel(o);

    std::cout << "matrix: " << m.rows() << "x" << m.cols() << ", "
              << m.nnz() << " nonzeros, density " << m.density()
              << ", avg degree " << m.avgDegree() << "\n";
    TileGrid grid(m, arch.tile_height, arch.tile_width);
    ImhStats imh = computeImhStats(grid);
    std::cout << "tiling: " << arch.tile_height << "x" << arch.tile_width
              << " -> " << grid.numTiles() << " occupied tiles ("
              << grid.emptyTiles() << " empty eliminated)\n"
              << "IMH: tile-nnz CV " << Table::num(imh.tile_cv, 2)
              << ", tile Gini " << Table::num(imh.tile_gini, 2)
              << ", row Gini " << Table::num(imh.row_gini, 2) << "\n"
              << "     densest 10% of tiles hold "
              << Table::num(100 * imh.top10pct_mass, 1)
              << "% of the nonzeros; hot mass (tiles with nnz >= width) "
              << Table::num(100 * imh.hot_mass, 1) << "%\n";

    TileSizeSearchResult ts = searchTileSize(arch, m, kernel);
    Table t({"Tile size", "Occupied tiles", "Predicted cycles"});
    for (const auto& c : ts.candidates)
        t.addRow({std::to_string(c.tile_height), std::to_string(c.tiles),
                  Table::num(c.predicted_cycles, 0)});
    t.print(std::cout);
    std::cout << "model-recommended tile size: " << ts.best.tile_height
              << "\n";
    return 0;
}

/**
 * Build the preprocessed state from either path: --mmap maps a `.htb`
 * and tiles it zero-copy, otherwise the matrix loads into memory.  The
 * mapping must outlive nothing — the grid owns its tiled arrays — but
 * is returned anyway so callers can report on it.
 */
std::unique_ptr<HotTiles>
makeHotTiles(const Options& o, const Architecture& arch,
             const HotTilesOptions& opts)
{
    if (o.mmap) {
        MappedMatrix mapped(o.matrix);
        return std::make_unique<HotTiles>(arch, mapped, opts);
    }
    CooMatrix m = loadMatrix(o);
    return std::make_unique<HotTiles>(arch, m, opts);
}

int
cmdPartition(const Options& o)
{
    Architecture arch = calibrated(makeArch(o));
    HotTilesOptions opts;
    opts.kernel = makeKernel(o);
    opts.iunaware_seed = o.seed;
    std::unique_ptr<HotTiles> ht_ptr = makeHotTiles(o, arch, opts);
    HotTiles& ht = *ht_ptr;

    const Partition& p = ht.partition();
    std::cout << "partitioned " << ht.grid().numTiles() << " tiles with "
              << p.heuristic << (p.serial ? " (serial)" : " (parallel)")
              << "\n"
              << "hot tiles: " << 100.0 * p.hotTileFraction()
              << "%, hot nonzeros: "
              << 100.0 * p.hotNnzFraction(ht.grid()) << "%\n"
              << "predicted runtime: " << p.predicted_cycles << " cycles ("
              << cyclesToMs(p.predicted_cycles, arch.freq_ghz) << " ms)\n"
              << "preprocessing: " << ht.timing().total() * 1e3 << " ms ("
              << 100.0 * ht.timing().overheadFraction()
              << "% HotTiles-specific)\n";
    if (!o.out_file.empty()) {
        writePartitionFile(p, ht.grid(), o.matrix, o.out_file);
        std::cout << "saved partition to " << o.out_file << "\n";
    }
    return 0;
}

/**
 * Owns whichever trace sink the options selected (CSV, Chrome JSON, or
 * none).  Destroy before reading back the output files: the Chrome
 * writer closes its JSON document in the destructor.
 */
struct TraceSinkHolder
{
    std::ofstream stream;
    std::unique_ptr<TraceWriter> csv;
    std::unique_ptr<ChromeTraceWriter> json;
    TraceSink* sink = nullptr;

    explicit TraceSinkHolder(const Options& o)
    {
        HT_FATAL_IF(!o.trace_file.empty() && !o.trace_json_file.empty(),
                    "--trace and --trace-json are mutually exclusive; "
                    "pick one sink per run");
        const std::string& path =
            !o.trace_file.empty() ? o.trace_file : o.trace_json_file;
        if (path.empty())
            return;
        stream.open(path);
        HT_FATAL_IF(!stream, "cannot open '", path, "' for writing");
        if (!o.trace_file.empty()) {
            csv = std::make_unique<TraceWriter>(stream);
            sink = csv.get();
        } else {
            json = std::make_unique<ChromeTraceWriter>(stream);
            sink = json.get();
        }
    }
};

/** Write the global metrics registry as JSON to @p dest ('-' = stdout). */
void
writeMetricsTo(const std::string& dest)
{
    if (dest == "-") {
        MetricsRegistry::global().writeJson(std::cout);
        return;
    }
    std::ofstream os(dest);
    HT_FATAL_IF(!os, "cannot open '", dest, "' for writing");
    MetricsRegistry::global().writeJson(os);
    std::cout << "wrote metrics to " << dest << "\n";
}

int
cmdSimulate(const Options& o)
{
    CooMatrix m = loadMatrix(o);
    Architecture arch = calibrated(makeArch(o));
    HotTilesOptions opts;
    opts.kernel = makeKernel(o);
    opts.iunaware_seed = o.seed;
    opts.build_formats = false;
    if (o.verbose)
        std::cout << "host kernel tier: "
                  << kernels::tierName(kernels::activeTier())
                  << (kernels::scalarForced() ? " (force-scalar)" : "")
                  << "\n";

    FaultPlan plan;
    const FaultPlan* faults = nullptr;
    if (!o.faults_spec.empty()) {
        plan = makeFaultPlan(o.fault_seed, arch,
                             parseFaultSpec(o.faults_spec));
        faults = &plan;
        std::cout << "injecting " << plan.events.size()
                  << " fault(s) from seed " << o.fault_seed << ":";
        for (const FaultEvent& ev : plan.events)
            std::cout << " " << faultKindName(ev.kind) << "@" << ev.at;
        std::cout << "\n";
    }

    if (!o.load_file.empty()) {
        TileGrid grid(m, arch.tile_height, arch.tile_width);
        Partition p = readPartitionFile(o.load_file, grid);
        SimConfig scfg;
        TraceSinkHolder sinks(o);
        scfg.trace = sinks.sink;
        scfg.faults = faults;
        SimOutput out = simulateExecution(arch, grid, p.is_hot, p.serial,
                                          opts.kernel, scfg);
        std::cout << "loaded partition (" << p.heuristic << "): "
                  << out.stats.cycles << " cycles, " << out.stats.ms
                  << " ms, " << out.stats.avg_bw_gbps << " GB/s\n";
        if (faults) {
            const FaultStats& fs = out.stats.faults;
            std::cout << "faults: " << fs.injected << " injected, "
                      << fs.workers_failed << " PEs dead, "
                      << fs.tiles_migrated << " tiles migrated ("
                      << fs.nnz_redispatched << " nnz)"
                      << (fs.degraded_mode ? ", DEGRADED to homogeneous"
                                           : "")
                      << "\n"
                      << "predicted (fault-free) " << p.predicted_cycles
                      << " cycles vs achieved " << out.stats.cycles << "\n";
        }
        if (o.verbose)
            std::cout << "event loop: " << out.stats.events_processed
                      << " events, peak queue depth "
                      << out.stats.peak_queue_depth << ", "
                      << out.stats.batched_events
                      << " completions batched\n";
        if (sinks.csv)
            std::cout << "wrote " << sinks.csv->rows() << " trace rows to "
                      << o.trace_file << "\n";
        if (sinks.json)
            std::cout << "wrote " << sinks.json->events()
                      << " trace events to " << o.trace_json_file << "\n";
        if (!o.metrics_file.empty())
            writeMetricsTo(o.metrics_file);
        return 0;
    }

    TraceSinkHolder sinks(o);
    EvalObservability obs;
    obs.trace = sinks.sink;
    // Per-tile prediction error rides along whenever metrics are asked
    // for (it lands in the registry as histograms).
    PredictionErrorTelemetry pred;
    obs.collect_prediction_error = !o.metrics_file.empty();
    obs.prediction = obs.collect_prediction_error ? &pred : nullptr;
    MatrixEvaluation ev =
        evaluateMatrix(arch, m, o.matrix, opts, faults, obs);
    std::vector<std::string> cols = {"Strategy", "Cycles", "ms",
                                     "Speedup vs worst", "BW GB/s"};
    if (faults) {
        // Predicted-vs-achieved under faults, plus the recovery columns.
        cols.push_back("Predicted");
        cols.push_back("PEs dead");
        cols.push_back("Migrated");
    }
    if (o.verbose) {
        // Event-loop observability columns (identical across queue
        // engines; useful for judging simulation cost per strategy).
        cols.push_back("Events");
        cols.push_back("PeakQ");
        cols.push_back("Batched");
    }
    Table t(cols);
    auto row = [&](const char* name, const StrategyOutcome& s) {
        std::vector<std::string> r = {
            name, Table::num(s.cycles(), 0), Table::num(s.ms(), 3),
            Table::num(ev.speedupOverWorst(s), 2),
            Table::num(s.stats.avg_bw_gbps, 1)};
        if (faults) {
            r.push_back(Table::num(s.predicted_cycles, 0));
            r.push_back(std::to_string(s.stats.faults.workers_failed));
            r.push_back(std::to_string(s.stats.faults.tiles_migrated) +
                        (s.stats.faults.degraded_mode ? "*" : ""));
        }
        if (o.verbose) {
            r.push_back(std::to_string(s.stats.events_processed));
            r.push_back(std::to_string(s.stats.peak_queue_depth));
            r.push_back(std::to_string(s.stats.batched_events));
        }
        t.addRow(r);
    };
    row("HotOnly", ev.hot_only);
    row("ColdOnly", ev.cold_only);
    row("IUnaware", ev.iunaware);
    row("HotTiles", ev.hottiles);
    t.print(std::cout);
    if (faults)
        std::cout << "(* = degraded to homogeneous execution after a "
                     "worker class died)\n";
    std::cout << "HotTiles vs BestHomogeneous: "
              << Table::num(ev.bestHomogeneousCycles() /
                                ev.hottiles.cycles(), 2)
              << "x\n";
    if (obs.collect_prediction_error && !pred.empty())
        std::cout << "prediction error sampled over "
                  << pred.hot_tiles.size() << " hot tiles / "
                  << pred.cold_panels.size() << " cold panels "
                  << "(histograms in metrics output)\n";
    if (sinks.csv)
        std::cout << "wrote " << sinks.csv->rows() << " trace rows to "
                  << o.trace_file << "\n";
    if (sinks.json)
        std::cout << "wrote " << sinks.json->events()
                  << " trace events to " << o.trace_json_file << "\n";
    if (!o.metrics_file.empty())
        writeMetricsTo(o.metrics_file);
    return 0;
}

int
cmdRun(const Options& o)
{
    HT_FATAL_IF(!o.native,
                "run needs a backend; the only one today is --native "
                "(the host CPU, docs/EXECUTION.md)");
    const std::string policy = toLower(o.policy_name);
    HT_FATAL_IF(policy != "golden" && policy != "fast",
                "unknown --policy '", o.policy_name, "' (golden|fast)");

    Architecture arch = calibrated(makeArch(o));
    HotTilesOptions opts;
    opts.kernel = makeKernel(o);
    opts.iunaware_seed = o.seed;
    opts.build_formats = false;
    std::unique_ptr<HotTiles> ht_ptr = makeHotTiles(o, arch, opts);
    HotTiles& ht = *ht_ptr;
    const TileGrid& grid = ht.grid();
    const Partition& p = ht.partition();

    exec::NativeExecOptions eo;
    eo.policy = policy == "fast" ? kernels::Policy::Fast
                                 : kernels::Policy::Golden;
    eo.work_stealing = !o.no_steal;
    eo.hot_executors = o.hot_executors;
    if (o.fail_class >= 0) {
        eo.fail_class = o.fail_class;
        eo.fail_after_tasks = o.fail_after;
    }
    AssignmentTotals totals = assignmentTotals(ht.context(), p.is_hot);
    if (totals.th_total + totals.tc_total > 0)
        eo.hot_share_hint =
            totals.th_total / (totals.th_total + totals.tc_total);
    auto backend = exec::makeNativeCpuBackend(eo);

    DenseMatrix din(grid.matrixCols(), opts.kernel.k);
    Rng rng(o.seed);
    din.fillRandom(rng);

    std::cout << "executing " << p.heuristic << " plan natively ("
              << policy << " kernels, tier "
              << kernels::tierName(kernels::activeTier()) << ")\n";
    exec::ExecReport rep;
    DenseMatrix out = backend->run(grid, p, opts.kernel, din, &rep);
    if (o.corrupt_output && out.rows() > 0 && out.cols() > 0)
        out.at(0, 0) += Value(1);

    if (!o.no_verify) {
        DenseMatrix ref =
            exec::referenceExecute(grid, p, opts.kernel, din);
        if (eo.policy == kernels::Policy::Golden) {
            const bool same =
                out.data().size() == ref.data().size() &&
                std::memcmp(out.data().data(), ref.data().data(),
                            out.data().size() * sizeof(Value)) == 0;
            if (!same) {
                std::cerr << "verification failed: native result is NOT "
                             "bit-identical to the golden reference "
                             "(max |diff| "
                          << out.maxAbsDiff(ref) << ")\n";
                return kExitVerify;
            }
            std::cout << "verified: bit-identical to the golden reference "
                         "kernels\n";
        } else {
            if (!out.approxEqual(ref)) {
                std::cerr << "verification failed: native fast-policy "
                             "result diverges from the golden reference "
                             "(max |diff| "
                          << out.maxAbsDiff(ref) << ")\n";
                return kExitVerify;
            }
            std::cout << "verified: within fast-policy tolerance of the "
                         "golden reference (max |diff| "
                      << out.maxAbsDiff(ref) << ")\n";
        }
    }

    PredictionErrorTelemetry tel =
        exec::computeNativePredictionError(grid, ht.context(), p.is_hot,
                                           rep);
    recordPredictionError(tel, "native");
    PredictionErrorSummary hs = summarizePredictionError(tel.hot_tiles);
    PredictionErrorSummary cs = summarizePredictionError(tel.cold_panels);

    Table t({"Class", "Executors", "Tasks", "Stolen", "Tiles", "Nnz",
             "Busy ms", "Model err% mean", "p90"});
    auto row = [&](const char* name, unsigned execs,
                   const exec::ExecClassReport& c,
                   const PredictionErrorSummary& s) {
        t.addRow({name, std::to_string(execs), std::to_string(c.tasks),
                  std::to_string(c.stolen_tasks), std::to_string(c.tiles),
                  std::to_string(c.nnz), Table::num(c.busy_s * 1e3, 3),
                  s.count ? Table::num(s.mean_pct, 1) : "-",
                  s.count ? Table::num(s.p90_pct, 1) : "-"});
    };
    row("hot", rep.hot_executors, rep.hot, hs);
    row("cold", rep.cold_executors, rep.cold, cs);
    t.print(std::cout);
    std::cout << "wall " << Table::num(rep.wall_s * 1e3, 3) << " ms (+ "
              << Table::num(rep.prepare_s * 1e3, 3) << " ms format build), "
              << Table::num(rep.gflops, 2) << " GFLOP/s on " << rep.threads
              << " threads\n"
              << "measured-vs-predicted sampled over " << hs.count
              << " hot tiles / " << cs.count
              << " cold panels (prediction_error.native.* histograms)\n";
    if (!o.metrics_file.empty())
        writeMetricsTo(o.metrics_file);
    if (rep.class_failed) {
        // Correct result, but a worker class was lost along the way:
        // the distinct exit code lets callers tell "healthy" from
        // "survived degraded" without parsing stdout.
        std::cout << "fault: class fail-stop migrated "
                  << rep.requeued_tasks << " task(s) to the survivor\n";
        return kExitFaultDegraded;
    }
    return kExitOk;
}

int
cmdServe(const Options& o)
{
    serve::ServiceConfig cfg;
    cfg.workers = o.serve_workers;
    cfg.queue_capacity = o.serve_queue;
    cfg.max_per_tenant = o.serve_tenant_cap;
    cfg.cache_capacity = o.serve_cache;
    cfg.default_deadline_ms = o.serve_deadline_ms;
    cfg.max_retries = o.serve_max_retries;
    cfg.coalesce_runs = o.serve_coalesce;
    cfg.max_sessions = o.serve_max_sessions;
    cfg.session_formats = o.serve_session_formats;
    cfg.chaos.seed = o.chaos_seed;
    TraceSinkHolder trace(o);  // --trace/--trace-json: ladder transitions
    cfg.trace = trace.sink;

    std::cerr << "hottiles serve: " << cfg.workers << " workers, queue "
              << cfg.queue_capacity << ", cache " << cfg.cache_capacity
              << ", deadline " << cfg.default_deadline_ms << " ms"
              << (cfg.chaos.enabled() ? ", CHAOS MODE" : "") << "\n";

    serve::PlanService service(cfg);
    uint64_t processed =
        serve::runServeLoop(std::cin, std::cout, service);
    service.stop();

    serve::ServiceStats s = service.stats();
    std::cerr << "hottiles serve: processed " << processed << " request(s): "
              << s.ok << " ok, " << s.degraded << " degraded, " << s.shed
              << " shed, " << s.timeout << " timeout, " << s.error
              << " error; " << s.coalesced << " coalesced, " << s.deltas
              << " delta(s), " << s.value_patches
              << " value patch(es); cache " << s.cache.hits << " hit / "
              << s.cache.misses << " miss / " << s.cache.shared_builds
              << " shared / " << s.cache.corrupt_dropped << " corrupt\n";
    if (!o.metrics_file.empty())
        writeMetricsTo(o.metrics_file);
    return kExitOk;
}

int
cmdUpdate(const Options& o)
{
    CooMatrix m = loadMatrix(o);
    Architecture arch = calibrated(makeArch(o));
    HotTilesOptions opts;
    opts.kernel = makeKernel(o);
    opts.iunaware_seed = o.seed;

    double t0 = monotonicSeconds();
    HotTiles ht(arch, m, opts);
    std::cout << "initial preprocessing: "
              << Table::num((monotonicSeconds() - t0) * 1e3, 3) << " ms, "
              << ht.grid().numTiles() << " tiles\n";

    DenseMatrix din(m.cols(), opts.kernel.k);
    Rng rng(o.seed);
    din.fillRandom(rng);

    Table t({"Round", "Ops", "Dirty tiles", "Migrated", "Reused panels",
             "Update ms", "Rebuild ms", "Speedup", "Identical"});
    bool all_identical = true;
    for (uint64_t round = 0; round < o.updates; ++round) {
        DeltaBatch batch = genDeltaBatch(m, o.delta_inserts, o.delta_deletes,
                                         o.delta_seed + round);
        t0 = monotonicSeconds();
        DeltaUpdateStats st = ht.applyDelta(batch);
        const double update_ms = (monotonicSeconds() - t0) * 1e3;

        m = applyDeltaToCoo(m, batch);
        t0 = monotonicSeconds();
        HotTiles fresh(arch, m, opts);
        const double rebuild_ms = (monotonicSeconds() - t0) * 1e3;

        bool identical = samePreprocessedState(ht, fresh);
        if (identical) {
            DenseMatrix out_inc = exec::referenceExecute(
                ht.grid(), ht.partition(), opts.kernel, din);
            DenseMatrix out_fresh = exec::referenceExecute(
                fresh.grid(), fresh.partition(), opts.kernel, din);
            identical =
                out_inc.data().size() == out_fresh.data().size() &&
                std::memcmp(out_inc.data().data(), out_fresh.data().data(),
                            out_inc.data().size() * sizeof(Value)) == 0;
        }
        all_identical = all_identical && identical;

        t.addRow({std::to_string(round), std::to_string(batch.size()),
                  std::to_string(st.dirty_tiles),
                  std::to_string(st.migrated_tiles),
                  std::to_string(st.panels_reused) + "/" +
                      std::to_string(st.panels_reused + st.panels_rebuilt),
                  Table::num(update_ms, 3), Table::num(rebuild_ms, 3),
                  Table::num(update_ms > 0 ? rebuild_ms / update_ms : 0, 2),
                  identical ? "yes" : "NO"});
    }
    t.print(std::cout);
    std::cout << "accumulated update time: "
              << Table::num(ht.timing().update_s * 1e3, 3) << " ms over "
              << o.updates << " round(s)\n";
    if (!o.metrics_file.empty())
        writeMetricsTo(o.metrics_file);
    if (!all_identical) {
        std::cerr << "verification failed: incremental update diverged "
                     "from from-scratch preprocessing\n";
        return kExitVerify;
    }
    std::cout << "verified: every round bit-identical to from-scratch "
                 "preprocessing\n";
    return kExitOk;
}

int
cmdConvert(const Options& o)
{
    const Index pr = o.panel_rows;
    uint64_t nnz = 0;
    if (o.matrix.rfind("rmat:", 0) == 0) {
        // rmat:SCALE:DEGREE[:SEED] — streamed generation, never holds
        // more than one panel's edges.
        auto parts = splitChar(o.matrix, ':');
        HT_FATAL_IF(parts.size() < 3 || parts.size() > 4,
                    "rmat spec is rmat:SCALE:DEGREE[:SEED], got '",
                    o.matrix, "'");
        uint64_t scale =
            parseU64Arg(std::string(parts[1]), "rmat scale");
        HT_FATAL_IF(scale == 0 || scale > 30,
                    "rmat scale must be in [1, 30]");
        uint64_t degree =
            parseU64Arg(std::string(parts[2]), "rmat degree");
        HT_FATAL_IF(degree == 0 || degree > 4096,
                    "rmat degree must be in [1, 4096]");
        uint64_t seed = parts.size() > 3
                            ? parseU64Arg(std::string(parts[3]), "rmat seed")
                            : o.seed;
        const Index rows = Index(1) << scale;
        nnz = genRmatHtb(o.convert_dst, rows, size_t(rows) * degree, 0.57,
                         0.19, 0.19, 0.05, seed, pr);
    } else if (!o.matrix.empty() && o.matrix[0] == '@') {
        CooMatrix m = makeSuiteMatrix(o.matrix.substr(1));
        m.sortRowMajor();
        m.dedupSum();
        writeHtbFromCoo(o.convert_dst, m, pr);
        nnz = m.nnz();
    } else {
        // Two-pass streaming conversion: O(largest panel) peak RSS.
        nnz = convertMatrixMarketToHtb(o.matrix, o.convert_dst, pr);
    }
    MappedMatrix check(o.convert_dst);
    std::cout << "wrote " << o.convert_dst << ": " << check.rows() << "x"
              << check.cols() << ", " << nnz << " nonzeros in "
              << check.numPanels() << " panel(s) of " << check.panelRows()
              << " row(s)\n";
    return kExitOk;
}

int
cmdExplore(const Options& o)
{
    CooMatrix m = loadMatrix(o);
    auto pts = exploreIsoScale(m, o.total, makeKernel(o));
    Table t({"Design", "Predicted cycles", "Simulated cycles"});
    for (const auto& pt : pts)
        t.addRow({pt.label(), Table::num(pt.predicted_cycles, 0),
                  Table::num(pt.actual_cycles, 0)});
    t.print(std::cout);
    std::cout << "predicted best: " << pts[bestPredicted(pts)].label()
              << ", simulated best: " << pts[bestActual(pts)].label()
              << "\n";
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    Options o;
    try {
        o = parseArgs(argc, argv);
    } catch (const FatalError& e) {
        // Argument-parsing failures are usage errors: exit 2, distinct
        // from runtime failures (exit 1).
        std::cerr << "error: " << e.what() << "\n";
        return kExitUsage;
    }
    try {
        if (o.threads > 0)
            ThreadPool::setGlobalThreads(o.threads);
        if (o.command == "suite")
            return cmdSuite();
        if (o.command == "analyze")
            return cmdAnalyze(o);
        if (o.command == "partition")
            return cmdPartition(o);
        if (o.command == "simulate")
            return cmdSimulate(o);
        if (o.command == "explore")
            return cmdExplore(o);
        if (o.command == "run")
            return cmdRun(o);
        if (o.command == "serve")
            return cmdServe(o);
        if (o.command == "update")
            return cmdUpdate(o);
        if (o.command == "convert")
            return cmdConvert(o);
        usage(argv[0]);
    } catch (const FatalError& e) {
        std::cerr << "error: " << e.what() << "\n";
        return kExitError;
    } catch (const std::exception& e) {
        // Anything else that slipped through still exits with a clean
        // one-line message instead of an abort/backtrace.
        std::cerr << "error: " << e.what() << "\n";
        return kExitError;
    }
}
