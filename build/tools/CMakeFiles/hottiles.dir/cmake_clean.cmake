file(REMOVE_RECURSE
  "CMakeFiles/hottiles.dir/hottiles_cli.cpp.o"
  "CMakeFiles/hottiles.dir/hottiles_cli.cpp.o.d"
  "hottiles"
  "hottiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hottiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
