# Empty compiler generated dependencies file for hottiles.
# This may be replaced when dependencies are built.
