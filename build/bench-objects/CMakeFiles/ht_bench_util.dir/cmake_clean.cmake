file(REMOVE_RECURSE
  "CMakeFiles/ht_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/ht_bench_util.dir/bench_util.cpp.o.d"
  "libht_bench_util.a"
  "libht_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
