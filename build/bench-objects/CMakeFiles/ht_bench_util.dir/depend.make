# Empty dependencies file for ht_bench_util.
# This may be replaced when dependencies are built.
