file(REMOVE_RECURSE
  "libht_bench_util.a"
)
