file(REMOVE_RECURSE
  "../bench/bench_micro_library"
  "../bench/bench_micro_library.pdb"
  "CMakeFiles/bench_micro_library.dir/bench_micro_library.cpp.o"
  "CMakeFiles/bench_micro_library.dir/bench_micro_library.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
