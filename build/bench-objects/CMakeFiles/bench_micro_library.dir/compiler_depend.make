# Empty compiler generated dependencies file for bench_micro_library.
# This may be replaced when dependencies are built.
