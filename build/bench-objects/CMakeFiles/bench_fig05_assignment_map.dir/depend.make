# Empty dependencies file for bench_fig05_assignment_map.
# This may be replaced when dependencies are built.
