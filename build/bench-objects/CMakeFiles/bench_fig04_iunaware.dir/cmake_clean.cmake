file(REMOVE_RECURSE
  "../bench/bench_fig04_iunaware"
  "../bench/bench_fig04_iunaware.pdb"
  "CMakeFiles/bench_fig04_iunaware.dir/bench_fig04_iunaware.cpp.o"
  "CMakeFiles/bench_fig04_iunaware.dir/bench_fig04_iunaware.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_iunaware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
