file(REMOVE_RECURSE
  "../bench/bench_table06_runtimes"
  "../bench/bench_table06_runtimes.pdb"
  "CMakeFiles/bench_table06_runtimes.dir/bench_table06_runtimes.cpp.o"
  "CMakeFiles/bench_table06_runtimes.dir/bench_table06_runtimes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table06_runtimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
