# Empty compiler generated dependencies file for bench_table09_best_arch.
# This may be replaced when dependencies are built.
