file(REMOVE_RECURSE
  "../bench/bench_table09_best_arch"
  "../bench/bench_table09_best_arch.pdb"
  "CMakeFiles/bench_table09_best_arch.dir/bench_table09_best_arch.cpp.o"
  "CMakeFiles/bench_table09_best_arch.dir/bench_table09_best_arch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table09_best_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
