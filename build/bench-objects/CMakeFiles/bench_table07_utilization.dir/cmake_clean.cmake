file(REMOVE_RECURSE
  "../bench/bench_table07_utilization"
  "../bench/bench_table07_utilization.pdb"
  "CMakeFiles/bench_table07_utilization.dir/bench_table07_utilization.cpp.o"
  "CMakeFiles/bench_table07_utilization.dir/bench_table07_utilization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table07_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
