# Empty compiler generated dependencies file for bench_table07_utilization.
# This may be replaced when dependencies are built.
