# Empty dependencies file for bench_fig10_spade_sextans.
# This may be replaced when dependencies are built.
