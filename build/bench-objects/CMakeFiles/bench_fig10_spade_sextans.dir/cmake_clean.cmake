file(REMOVE_RECURSE
  "../bench/bench_fig10_spade_sextans"
  "../bench/bench_fig10_spade_sextans.pdb"
  "CMakeFiles/bench_fig10_spade_sextans.dir/bench_fig10_spade_sextans.cpp.o"
  "CMakeFiles/bench_fig10_spade_sextans.dir/bench_fig10_spade_sextans.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_spade_sextans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
