# Empty dependencies file for bench_fig12_heuristic_scales.
# This may be replaced when dependencies are built.
