file(REMOVE_RECURSE
  "../bench/bench_fig12_heuristic_scales"
  "../bench/bench_fig12_heuristic_scales.pdb"
  "CMakeFiles/bench_fig12_heuristic_scales.dir/bench_fig12_heuristic_scales.cpp.o"
  "CMakeFiles/bench_fig12_heuristic_scales.dir/bench_fig12_heuristic_scales.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_heuristic_scales.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
