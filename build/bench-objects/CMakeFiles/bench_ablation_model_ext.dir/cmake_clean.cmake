file(REMOVE_RECURSE
  "../bench/bench_ablation_model_ext"
  "../bench/bench_ablation_model_ext.pdb"
  "CMakeFiles/bench_ablation_model_ext.dir/bench_ablation_model_ext.cpp.o"
  "CMakeFiles/bench_ablation_model_ext.dir/bench_ablation_model_ext.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_model_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
