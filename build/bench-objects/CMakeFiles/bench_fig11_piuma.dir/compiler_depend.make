# Empty compiler generated dependencies file for bench_fig11_piuma.
# This may be replaced when dependencies are built.
