file(REMOVE_RECURSE
  "../bench/bench_fig11_piuma"
  "../bench/bench_fig11_piuma.pdb"
  "CMakeFiles/bench_fig11_piuma.dir/bench_fig11_piuma.cpp.o"
  "CMakeFiles/bench_fig11_piuma.dir/bench_fig11_piuma.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_piuma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
