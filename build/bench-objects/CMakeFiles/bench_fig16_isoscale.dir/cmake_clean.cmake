file(REMOVE_RECURSE
  "../bench/bench_fig16_isoscale"
  "../bench/bench_fig16_isoscale.pdb"
  "CMakeFiles/bench_fig16_isoscale.dir/bench_fig16_isoscale.cpp.o"
  "CMakeFiles/bench_fig16_isoscale.dir/bench_fig16_isoscale.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_isoscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
