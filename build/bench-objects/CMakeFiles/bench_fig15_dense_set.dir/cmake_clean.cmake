file(REMOVE_RECURSE
  "../bench/bench_fig15_dense_set"
  "../bench/bench_fig15_dense_set.pdb"
  "CMakeFiles/bench_fig15_dense_set.dir/bench_fig15_dense_set.cpp.o"
  "CMakeFiles/bench_fig15_dense_set.dir/bench_fig15_dense_set.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_dense_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
