# Empty compiler generated dependencies file for bench_fig15_dense_set.
# This may be replaced when dependencies are built.
