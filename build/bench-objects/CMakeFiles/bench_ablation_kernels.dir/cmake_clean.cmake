file(REMOVE_RECURSE
  "../bench/bench_ablation_kernels"
  "../bench/bench_ablation_kernels.pdb"
  "CMakeFiles/bench_ablation_kernels.dir/bench_ablation_kernels.cpp.o"
  "CMakeFiles/bench_ablation_kernels.dir/bench_ablation_kernels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
