file(REMOVE_RECURSE
  "../bench/bench_fig18_preprocessing"
  "../bench/bench_fig18_preprocessing.pdb"
  "CMakeFiles/bench_fig18_preprocessing.dir/bench_fig18_preprocessing.cpp.o"
  "CMakeFiles/bench_fig18_preprocessing.dir/bench_fig18_preprocessing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_preprocessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
