file(REMOVE_RECURSE
  "../bench/bench_fig17_prediction_error"
  "../bench/bench_fig17_prediction_error.pdb"
  "CMakeFiles/bench_fig17_prediction_error.dir/bench_fig17_prediction_error.cpp.o"
  "CMakeFiles/bench_fig17_prediction_error.dir/bench_fig17_prediction_error.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_prediction_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
