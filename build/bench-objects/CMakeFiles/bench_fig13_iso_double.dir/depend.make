# Empty dependencies file for bench_fig13_iso_double.
# This may be replaced when dependencies are built.
