file(REMOVE_RECURSE
  "../bench/bench_fig13_iso_double"
  "../bench/bench_fig13_iso_double.pdb"
  "CMakeFiles/bench_fig13_iso_double.dir/bench_fig13_iso_double.cpp.o"
  "CMakeFiles/bench_fig13_iso_double.dir/bench_fig13_iso_double.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_iso_double.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
