file(REMOVE_RECURSE
  "CMakeFiles/ht_partition.dir/heuristics.cpp.o"
  "CMakeFiles/ht_partition.dir/heuristics.cpp.o.d"
  "CMakeFiles/ht_partition.dir/iunaware.cpp.o"
  "CMakeFiles/ht_partition.dir/iunaware.cpp.o.d"
  "CMakeFiles/ht_partition.dir/oracle.cpp.o"
  "CMakeFiles/ht_partition.dir/oracle.cpp.o.d"
  "CMakeFiles/ht_partition.dir/partition.cpp.o"
  "CMakeFiles/ht_partition.dir/partition.cpp.o.d"
  "CMakeFiles/ht_partition.dir/predicted_runtime.cpp.o"
  "CMakeFiles/ht_partition.dir/predicted_runtime.cpp.o.d"
  "libht_partition.a"
  "libht_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
