file(REMOVE_RECURSE
  "libht_partition.a"
)
