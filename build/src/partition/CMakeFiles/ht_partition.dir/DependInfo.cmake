
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/heuristics.cpp" "src/partition/CMakeFiles/ht_partition.dir/heuristics.cpp.o" "gcc" "src/partition/CMakeFiles/ht_partition.dir/heuristics.cpp.o.d"
  "/root/repo/src/partition/iunaware.cpp" "src/partition/CMakeFiles/ht_partition.dir/iunaware.cpp.o" "gcc" "src/partition/CMakeFiles/ht_partition.dir/iunaware.cpp.o.d"
  "/root/repo/src/partition/oracle.cpp" "src/partition/CMakeFiles/ht_partition.dir/oracle.cpp.o" "gcc" "src/partition/CMakeFiles/ht_partition.dir/oracle.cpp.o.d"
  "/root/repo/src/partition/partition.cpp" "src/partition/CMakeFiles/ht_partition.dir/partition.cpp.o" "gcc" "src/partition/CMakeFiles/ht_partition.dir/partition.cpp.o.d"
  "/root/repo/src/partition/predicted_runtime.cpp" "src/partition/CMakeFiles/ht_partition.dir/predicted_runtime.cpp.o" "gcc" "src/partition/CMakeFiles/ht_partition.dir/predicted_runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ht_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/ht_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ht_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
