# Empty compiler generated dependencies file for ht_partition.
# This may be replaced when dependencies are built.
