file(REMOVE_RECURSE
  "CMakeFiles/ht_arch.dir/arch_config.cpp.o"
  "CMakeFiles/ht_arch.dir/arch_config.cpp.o.d"
  "libht_arch.a"
  "libht_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
