# Empty dependencies file for ht_arch.
# This may be replaced when dependencies are built.
