file(REMOVE_RECURSE
  "libht_arch.a"
)
