file(REMOVE_RECURSE
  "CMakeFiles/ht_sim.dir/cache.cpp.o"
  "CMakeFiles/ht_sim.dir/cache.cpp.o.d"
  "CMakeFiles/ht_sim.dir/demand_pe.cpp.o"
  "CMakeFiles/ht_sim.dir/demand_pe.cpp.o.d"
  "CMakeFiles/ht_sim.dir/event_queue.cpp.o"
  "CMakeFiles/ht_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/ht_sim.dir/link.cpp.o"
  "CMakeFiles/ht_sim.dir/link.cpp.o.d"
  "CMakeFiles/ht_sim.dir/memory_system.cpp.o"
  "CMakeFiles/ht_sim.dir/memory_system.cpp.o.d"
  "CMakeFiles/ht_sim.dir/merger.cpp.o"
  "CMakeFiles/ht_sim.dir/merger.cpp.o.d"
  "CMakeFiles/ht_sim.dir/simulator.cpp.o"
  "CMakeFiles/ht_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/ht_sim.dir/stream_pe.cpp.o"
  "CMakeFiles/ht_sim.dir/stream_pe.cpp.o.d"
  "CMakeFiles/ht_sim.dir/trace.cpp.o"
  "CMakeFiles/ht_sim.dir/trace.cpp.o.d"
  "CMakeFiles/ht_sim.dir/worker.cpp.o"
  "CMakeFiles/ht_sim.dir/worker.cpp.o.d"
  "CMakeFiles/ht_sim.dir/worklist.cpp.o"
  "CMakeFiles/ht_sim.dir/worklist.cpp.o.d"
  "libht_sim.a"
  "libht_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
