file(REMOVE_RECURSE
  "libht_sim.a"
)
