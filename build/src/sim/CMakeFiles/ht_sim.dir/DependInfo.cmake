
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cpp" "src/sim/CMakeFiles/ht_sim.dir/cache.cpp.o" "gcc" "src/sim/CMakeFiles/ht_sim.dir/cache.cpp.o.d"
  "/root/repo/src/sim/demand_pe.cpp" "src/sim/CMakeFiles/ht_sim.dir/demand_pe.cpp.o" "gcc" "src/sim/CMakeFiles/ht_sim.dir/demand_pe.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/ht_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/ht_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/link.cpp" "src/sim/CMakeFiles/ht_sim.dir/link.cpp.o" "gcc" "src/sim/CMakeFiles/ht_sim.dir/link.cpp.o.d"
  "/root/repo/src/sim/memory_system.cpp" "src/sim/CMakeFiles/ht_sim.dir/memory_system.cpp.o" "gcc" "src/sim/CMakeFiles/ht_sim.dir/memory_system.cpp.o.d"
  "/root/repo/src/sim/merger.cpp" "src/sim/CMakeFiles/ht_sim.dir/merger.cpp.o" "gcc" "src/sim/CMakeFiles/ht_sim.dir/merger.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/ht_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/ht_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/stream_pe.cpp" "src/sim/CMakeFiles/ht_sim.dir/stream_pe.cpp.o" "gcc" "src/sim/CMakeFiles/ht_sim.dir/stream_pe.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/ht_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/ht_sim.dir/trace.cpp.o.d"
  "/root/repo/src/sim/worker.cpp" "src/sim/CMakeFiles/ht_sim.dir/worker.cpp.o" "gcc" "src/sim/CMakeFiles/ht_sim.dir/worker.cpp.o.d"
  "/root/repo/src/sim/worklist.cpp" "src/sim/CMakeFiles/ht_sim.dir/worklist.cpp.o" "gcc" "src/sim/CMakeFiles/ht_sim.dir/worklist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ht_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/ht_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ht_model.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/ht_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
