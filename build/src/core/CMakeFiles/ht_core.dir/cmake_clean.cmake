file(REMOVE_RECURSE
  "CMakeFiles/ht_core.dir/calibrate.cpp.o"
  "CMakeFiles/ht_core.dir/calibrate.cpp.o.d"
  "CMakeFiles/ht_core.dir/execution.cpp.o"
  "CMakeFiles/ht_core.dir/execution.cpp.o.d"
  "CMakeFiles/ht_core.dir/explorer.cpp.o"
  "CMakeFiles/ht_core.dir/explorer.cpp.o.d"
  "CMakeFiles/ht_core.dir/gspmm.cpp.o"
  "CMakeFiles/ht_core.dir/gspmm.cpp.o.d"
  "CMakeFiles/ht_core.dir/hottiles.cpp.o"
  "CMakeFiles/ht_core.dir/hottiles.cpp.o.d"
  "CMakeFiles/ht_core.dir/kernels.cpp.o"
  "CMakeFiles/ht_core.dir/kernels.cpp.o.d"
  "CMakeFiles/ht_core.dir/preprocess.cpp.o"
  "CMakeFiles/ht_core.dir/preprocess.cpp.o.d"
  "CMakeFiles/ht_core.dir/serialize.cpp.o"
  "CMakeFiles/ht_core.dir/serialize.cpp.o.d"
  "CMakeFiles/ht_core.dir/tile_search.cpp.o"
  "CMakeFiles/ht_core.dir/tile_search.cpp.o.d"
  "libht_core.a"
  "libht_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
