
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/calibrate.cpp" "src/core/CMakeFiles/ht_core.dir/calibrate.cpp.o" "gcc" "src/core/CMakeFiles/ht_core.dir/calibrate.cpp.o.d"
  "/root/repo/src/core/execution.cpp" "src/core/CMakeFiles/ht_core.dir/execution.cpp.o" "gcc" "src/core/CMakeFiles/ht_core.dir/execution.cpp.o.d"
  "/root/repo/src/core/explorer.cpp" "src/core/CMakeFiles/ht_core.dir/explorer.cpp.o" "gcc" "src/core/CMakeFiles/ht_core.dir/explorer.cpp.o.d"
  "/root/repo/src/core/gspmm.cpp" "src/core/CMakeFiles/ht_core.dir/gspmm.cpp.o" "gcc" "src/core/CMakeFiles/ht_core.dir/gspmm.cpp.o.d"
  "/root/repo/src/core/hottiles.cpp" "src/core/CMakeFiles/ht_core.dir/hottiles.cpp.o" "gcc" "src/core/CMakeFiles/ht_core.dir/hottiles.cpp.o.d"
  "/root/repo/src/core/kernels.cpp" "src/core/CMakeFiles/ht_core.dir/kernels.cpp.o" "gcc" "src/core/CMakeFiles/ht_core.dir/kernels.cpp.o.d"
  "/root/repo/src/core/preprocess.cpp" "src/core/CMakeFiles/ht_core.dir/preprocess.cpp.o" "gcc" "src/core/CMakeFiles/ht_core.dir/preprocess.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "src/core/CMakeFiles/ht_core.dir/serialize.cpp.o" "gcc" "src/core/CMakeFiles/ht_core.dir/serialize.cpp.o.d"
  "/root/repo/src/core/tile_search.cpp" "src/core/CMakeFiles/ht_core.dir/tile_search.cpp.o" "gcc" "src/core/CMakeFiles/ht_core.dir/tile_search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ht_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/ht_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ht_model.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/ht_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ht_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/ht_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
