file(REMOVE_RECURSE
  "libht_model.a"
)
