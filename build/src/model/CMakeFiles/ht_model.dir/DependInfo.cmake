
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/calibration.cpp" "src/model/CMakeFiles/ht_model.dir/calibration.cpp.o" "gcc" "src/model/CMakeFiles/ht_model.dir/calibration.cpp.o.d"
  "/root/repo/src/model/memory_model.cpp" "src/model/CMakeFiles/ht_model.dir/memory_model.cpp.o" "gcc" "src/model/CMakeFiles/ht_model.dir/memory_model.cpp.o.d"
  "/root/repo/src/model/roofline.cpp" "src/model/CMakeFiles/ht_model.dir/roofline.cpp.o" "gcc" "src/model/CMakeFiles/ht_model.dir/roofline.cpp.o.d"
  "/root/repo/src/model/time_model.cpp" "src/model/CMakeFiles/ht_model.dir/time_model.cpp.o" "gcc" "src/model/CMakeFiles/ht_model.dir/time_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ht_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/ht_sparse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
