file(REMOVE_RECURSE
  "CMakeFiles/ht_model.dir/calibration.cpp.o"
  "CMakeFiles/ht_model.dir/calibration.cpp.o.d"
  "CMakeFiles/ht_model.dir/memory_model.cpp.o"
  "CMakeFiles/ht_model.dir/memory_model.cpp.o.d"
  "CMakeFiles/ht_model.dir/roofline.cpp.o"
  "CMakeFiles/ht_model.dir/roofline.cpp.o.d"
  "CMakeFiles/ht_model.dir/time_model.cpp.o"
  "CMakeFiles/ht_model.dir/time_model.cpp.o.d"
  "libht_model.a"
  "libht_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
