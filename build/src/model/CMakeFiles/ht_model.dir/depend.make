# Empty dependencies file for ht_model.
# This may be replaced when dependencies are built.
