# Empty dependencies file for ht_common.
# This may be replaced when dependencies are built.
