file(REMOVE_RECURSE
  "CMakeFiles/ht_common.dir/error.cpp.o"
  "CMakeFiles/ht_common.dir/error.cpp.o.d"
  "CMakeFiles/ht_common.dir/log.cpp.o"
  "CMakeFiles/ht_common.dir/log.cpp.o.d"
  "CMakeFiles/ht_common.dir/random.cpp.o"
  "CMakeFiles/ht_common.dir/random.cpp.o.d"
  "CMakeFiles/ht_common.dir/stats.cpp.o"
  "CMakeFiles/ht_common.dir/stats.cpp.o.d"
  "CMakeFiles/ht_common.dir/string_util.cpp.o"
  "CMakeFiles/ht_common.dir/string_util.cpp.o.d"
  "CMakeFiles/ht_common.dir/table.cpp.o"
  "CMakeFiles/ht_common.dir/table.cpp.o.d"
  "libht_common.a"
  "libht_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
