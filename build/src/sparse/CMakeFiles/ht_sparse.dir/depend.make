# Empty dependencies file for ht_sparse.
# This may be replaced when dependencies are built.
