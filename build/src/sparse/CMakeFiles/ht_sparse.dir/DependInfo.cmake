
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/coo.cpp" "src/sparse/CMakeFiles/ht_sparse.dir/coo.cpp.o" "gcc" "src/sparse/CMakeFiles/ht_sparse.dir/coo.cpp.o.d"
  "/root/repo/src/sparse/csr.cpp" "src/sparse/CMakeFiles/ht_sparse.dir/csr.cpp.o" "gcc" "src/sparse/CMakeFiles/ht_sparse.dir/csr.cpp.o.d"
  "/root/repo/src/sparse/dense.cpp" "src/sparse/CMakeFiles/ht_sparse.dir/dense.cpp.o" "gcc" "src/sparse/CMakeFiles/ht_sparse.dir/dense.cpp.o.d"
  "/root/repo/src/sparse/generators.cpp" "src/sparse/CMakeFiles/ht_sparse.dir/generators.cpp.o" "gcc" "src/sparse/CMakeFiles/ht_sparse.dir/generators.cpp.o.d"
  "/root/repo/src/sparse/imh_stats.cpp" "src/sparse/CMakeFiles/ht_sparse.dir/imh_stats.cpp.o" "gcc" "src/sparse/CMakeFiles/ht_sparse.dir/imh_stats.cpp.o.d"
  "/root/repo/src/sparse/matrix_market.cpp" "src/sparse/CMakeFiles/ht_sparse.dir/matrix_market.cpp.o" "gcc" "src/sparse/CMakeFiles/ht_sparse.dir/matrix_market.cpp.o.d"
  "/root/repo/src/sparse/reorder.cpp" "src/sparse/CMakeFiles/ht_sparse.dir/reorder.cpp.o" "gcc" "src/sparse/CMakeFiles/ht_sparse.dir/reorder.cpp.o.d"
  "/root/repo/src/sparse/suite.cpp" "src/sparse/CMakeFiles/ht_sparse.dir/suite.cpp.o" "gcc" "src/sparse/CMakeFiles/ht_sparse.dir/suite.cpp.o.d"
  "/root/repo/src/sparse/tiling.cpp" "src/sparse/CMakeFiles/ht_sparse.dir/tiling.cpp.o" "gcc" "src/sparse/CMakeFiles/ht_sparse.dir/tiling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ht_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
