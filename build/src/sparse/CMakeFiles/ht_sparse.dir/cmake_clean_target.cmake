file(REMOVE_RECURSE
  "libht_sparse.a"
)
