file(REMOVE_RECURSE
  "CMakeFiles/ht_sparse.dir/coo.cpp.o"
  "CMakeFiles/ht_sparse.dir/coo.cpp.o.d"
  "CMakeFiles/ht_sparse.dir/csr.cpp.o"
  "CMakeFiles/ht_sparse.dir/csr.cpp.o.d"
  "CMakeFiles/ht_sparse.dir/dense.cpp.o"
  "CMakeFiles/ht_sparse.dir/dense.cpp.o.d"
  "CMakeFiles/ht_sparse.dir/generators.cpp.o"
  "CMakeFiles/ht_sparse.dir/generators.cpp.o.d"
  "CMakeFiles/ht_sparse.dir/imh_stats.cpp.o"
  "CMakeFiles/ht_sparse.dir/imh_stats.cpp.o.d"
  "CMakeFiles/ht_sparse.dir/matrix_market.cpp.o"
  "CMakeFiles/ht_sparse.dir/matrix_market.cpp.o.d"
  "CMakeFiles/ht_sparse.dir/reorder.cpp.o"
  "CMakeFiles/ht_sparse.dir/reorder.cpp.o.d"
  "CMakeFiles/ht_sparse.dir/suite.cpp.o"
  "CMakeFiles/ht_sparse.dir/suite.cpp.o.d"
  "CMakeFiles/ht_sparse.dir/tiling.cpp.o"
  "CMakeFiles/ht_sparse.dir/tiling.cpp.o.d"
  "libht_sparse.a"
  "libht_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
