# Empty compiler generated dependencies file for gnn_layer.
# This may be replaced when dependencies are built.
