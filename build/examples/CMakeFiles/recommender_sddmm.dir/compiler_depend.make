# Empty compiler generated dependencies file for recommender_sddmm.
# This may be replaced when dependencies are built.
