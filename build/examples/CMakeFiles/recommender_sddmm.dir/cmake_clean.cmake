file(REMOVE_RECURSE
  "CMakeFiles/recommender_sddmm.dir/recommender_sddmm.cpp.o"
  "CMakeFiles/recommender_sddmm.dir/recommender_sddmm.cpp.o.d"
  "recommender_sddmm"
  "recommender_sddmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recommender_sddmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
