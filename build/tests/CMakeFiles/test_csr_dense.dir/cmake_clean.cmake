file(REMOVE_RECURSE
  "CMakeFiles/test_csr_dense.dir/test_csr_dense.cpp.o"
  "CMakeFiles/test_csr_dense.dir/test_csr_dense.cpp.o.d"
  "test_csr_dense"
  "test_csr_dense.pdb"
  "test_csr_dense[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csr_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
