# Empty dependencies file for test_csr_dense.
# This may be replaced when dependencies are built.
