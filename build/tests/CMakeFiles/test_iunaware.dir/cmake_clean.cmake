file(REMOVE_RECURSE
  "CMakeFiles/test_iunaware.dir/test_iunaware.cpp.o"
  "CMakeFiles/test_iunaware.dir/test_iunaware.cpp.o.d"
  "test_iunaware"
  "test_iunaware.pdb"
  "test_iunaware[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iunaware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
