# Empty dependencies file for test_iunaware.
# This may be replaced when dependencies are built.
