file(REMOVE_RECURSE
  "CMakeFiles/test_imh_stats.dir/test_imh_stats.cpp.o"
  "CMakeFiles/test_imh_stats.dir/test_imh_stats.cpp.o.d"
  "test_imh_stats"
  "test_imh_stats.pdb"
  "test_imh_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_imh_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
