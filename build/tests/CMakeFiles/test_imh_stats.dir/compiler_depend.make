# Empty compiler generated dependencies file for test_imh_stats.
# This may be replaced when dependencies are built.
