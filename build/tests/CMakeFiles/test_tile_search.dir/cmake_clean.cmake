file(REMOVE_RECURSE
  "CMakeFiles/test_tile_search.dir/test_tile_search.cpp.o"
  "CMakeFiles/test_tile_search.dir/test_tile_search.cpp.o.d"
  "test_tile_search"
  "test_tile_search.pdb"
  "test_tile_search[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tile_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
