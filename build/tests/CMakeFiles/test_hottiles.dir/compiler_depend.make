# Empty compiler generated dependencies file for test_hottiles.
# This may be replaced when dependencies are built.
