file(REMOVE_RECURSE
  "CMakeFiles/test_hottiles.dir/test_hottiles.cpp.o"
  "CMakeFiles/test_hottiles.dir/test_hottiles.cpp.o.d"
  "test_hottiles"
  "test_hottiles.pdb"
  "test_hottiles[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hottiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
