# Empty dependencies file for test_suite_matrices.
# This may be replaced when dependencies are built.
