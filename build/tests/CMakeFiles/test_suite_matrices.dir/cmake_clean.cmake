file(REMOVE_RECURSE
  "CMakeFiles/test_suite_matrices.dir/test_suite_matrices.cpp.o"
  "CMakeFiles/test_suite_matrices.dir/test_suite_matrices.cpp.o.d"
  "test_suite_matrices"
  "test_suite_matrices.pdb"
  "test_suite_matrices[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_suite_matrices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
