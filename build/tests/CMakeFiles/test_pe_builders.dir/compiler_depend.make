# Empty compiler generated dependencies file for test_pe_builders.
# This may be replaced when dependencies are built.
