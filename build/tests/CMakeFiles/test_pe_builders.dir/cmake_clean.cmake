file(REMOVE_RECURSE
  "CMakeFiles/test_pe_builders.dir/test_pe_builders.cpp.o"
  "CMakeFiles/test_pe_builders.dir/test_pe_builders.cpp.o.d"
  "test_pe_builders"
  "test_pe_builders.pdb"
  "test_pe_builders[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pe_builders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
