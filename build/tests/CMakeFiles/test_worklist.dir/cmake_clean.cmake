file(REMOVE_RECURSE
  "CMakeFiles/test_worklist.dir/test_worklist.cpp.o"
  "CMakeFiles/test_worklist.dir/test_worklist.cpp.o.d"
  "test_worklist"
  "test_worklist.pdb"
  "test_worklist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_worklist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
