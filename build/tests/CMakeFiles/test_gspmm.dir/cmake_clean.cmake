file(REMOVE_RECURSE
  "CMakeFiles/test_gspmm.dir/test_gspmm.cpp.o"
  "CMakeFiles/test_gspmm.dir/test_gspmm.cpp.o.d"
  "test_gspmm"
  "test_gspmm.pdb"
  "test_gspmm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gspmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
