# Empty compiler generated dependencies file for test_gspmm.
# This may be replaced when dependencies are built.
